"""S3 — Hot-path kernel performance: the optimization pass holds its gains.

The curated microbenchmark suite times each optimized kernel next to its
frozen pre-optimization twin (:mod:`repro.perf.reference`) in one
process, on one pinned fixture world. Shape assertions: batched polyline
projection must be >= 3x the scalar per-point loop on 1k points, repeated
``LidarScanner.scan`` at a fixed pose cell must be >= 2x the re-cropping
original, and every headline kernel must report a sane median/p95. The
equivalence side (bit-identical outputs on the same rng stream) lives in
``tests/test_perf.py``; this bench only certifies the speed.
"""

from conftest import once

from repro.eval import ResultTable
from repro.perf import HEADLINE_KERNELS, run_perf_suite


def _experiment(rng):
    return run_perf_suite(repetitions=10, warmup=2)


def test_s03_hot_path_kernels(benchmark, rng):
    results, speedups, counters = once(benchmark, _experiment, rng)
    by_name = {r.name: r for r in results}

    table = ResultTable("S3", "hot-path kernel optimization")
    table.add("batched polyline projection speedup (1k points)", ">= 3x",
              f"{speedups['polyline.project_batch']:.2f}x "
              f"({1e3 * by_name['polyline.project_scalar'].median_s:.1f} -> "
              f"{1e3 * by_name['polyline.project_batch'].median_s:.1f} ms)",
              ok=speedups["polyline.project_batch"] >= 3.0)
    table.add("repeated lidar scan speedup (fixed pose cell)", ">= 2x",
              f"{speedups['lidar.scan']:.2f}x "
              f"({1e3 * by_name['lidar.scan_reference'].median_s:.1f} -> "
              f"{1e3 * by_name['lidar.scan'].median_s:.1f} ms)",
              ok=speedups["lidar.scan"] >= 2.0)
    table.add("particle-weight batching speedup", ">= 5x",
              f"{speedups['pf.weight']:.2f}x",
              ok=speedups["pf.weight"] >= 5.0)
    table.add("grid query ticket-sort vs repr-sort", ">= 1x",
              f"{speedups['grid.query_box']:.2f}x",
              ok=speedups["grid.query_box"] >= 1.0)

    for name in HEADLINE_KERNELS:
        r = by_name[name]
        table.add(f"{name} median / p95", "reported",
                  f"{1e3 * r.median_s:.2f} / {1e3 * r.p95_s:.2f} ms",
                  ok=0.0 < r.median_s <= r.p95_s)

    table.add("kernels reported", ">= 6", str(len(results)),
              ok=len(results) >= 6)
    table.add("instrumented counters captured", ">= 2",
              str(len(counters)), ok=len(counters) >= 2)
    table.print()
    assert table.all_ok()
