"""`ClusterChaosHarness`: shard-level faults against the sharded cluster.

The single-node harness (:mod:`repro.chaos.harness`) certifies the
serve→ingest loop; this one certifies the *cluster* layer — the journal,
failover, and rebalance machinery of
:class:`~repro.cluster.router.ClusterRouter` — under the ``shard`` fault
class:

- **cluster.shard_crash** — a primary shard process is killed without
  warning (``kill_shard``: no lock, exactly like a real crash mid-RPC);
- **cluster.slow_shard** — a shard stalls past the router's call
  timeout, which must surface as a timeout → replica failover → lazy
  restart, never as a hung client;
- **cluster.rebalance** — the cluster grows by one shard mid-stream,
  moving the rendezvous-hash-bounded tile fraction onto a journal-
  replayed newcomer.

The workload is a deterministic patch stream (seeded positions, strictly
increasing confidence so conflict resolution never depends on per-shard
version spacing) interleaved with *concurrent bursts* of pinned reads —
exercising the pipelined connections and replica-routed read path, so an
injected crash lands with multiple requests genuinely in flight — and
incremental client syncs. The same five invariants as the single-node matrix are certified
from the cluster's observable surfaces — the router journal, the merged
snapshot, each shard's change log, response versions, and the router's
freshness histogram:

1. **No lost acked writes** — replaying the journal on a fresh
   single-node server reproduces the merged cluster snapshot to
   canonical bytes, and a continuously syncing client converges to it.
   Holds because a write is acked only after it is journaled, ambiguous
   writes are erased by restart-from-journal before the single resend,
   and replicas apply acked patches synchronously.
2. **No duplicate changes** — the ownership-filtered cluster change
   view reports each element's history exactly once, on exactly one
   shard, and that history is legal (no double add, no remove of an
   absent element). Holds because every element has one home shard and
   rebalance filters the stale copy out of every merge.
3. **Version monotonicity** — each per-shard change log is contiguous
   from
   version 1 (journal replay preserves this across restarts) and the
   router-observed cluster version never regresses (the monotone clamp).
4. **Bounded freshness lag** — submit→ack lag stays under the bound
   even across crash-restart cycles, because restart replays a bounded
   journal and the write path retries exactly once.
5. **Zero constraint violations served** — a full constraint-engine
   scan of the merged cluster snapshot (what a bootstrapping client
   receives) finds no ERROR-severity violation. The cluster layer has
   no quarantine store of its own; the gate lives in the ingest
   pipeline fronting each shard, so this is certified from the served
   state alone.

A faults-disabled run is the parity probe: its canonical merged bytes
must equal :meth:`ClusterChaosHarness.run_plain` — the same patch stream
applied through a plain single-node :class:`MapService`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.faults import (
    CLUSTER_REBALANCE,
    CLUSTER_SHARD_CRASH,
    CLUSTER_SLOW_SHARD,
    FaultPlan,
)
from repro.chaos.report import (
    ChaosReport,
    InvariantResult,
    check_served_map_clean,
)
from repro.cluster.client import ClusterMapClient
from repro.cluster.router import ClusterRouter
from repro.core.changes import ChangeType
from repro.core.elements import SignType, TrafficSign
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.versioning import MapPatch
from repro.obs.log import EVENT_LOG, get_logger
from repro.obs.trace import TRACER, configure_tracing
from repro.serve.api import GetTile, IngestPatch
from repro.serve.service import MapService
from repro.storage.binary import encode_map
from repro.storage.tilestore import TileStore
from repro.update.distribution import ConflictPolicy, MapDistributionServer

_log = get_logger("chaos.cluster")


def canonical_map_bytes(hdmap: HDMap) -> bytes:
    """Insertion-order- and version-independent encoding of a map.

    ``encode_map`` serializes elements in insertion order, which differs
    between a single-node map and a scatter-gather merge; re-adding the
    elements sorted by id with a fixed name/version makes byte equality
    mean semantic equality.
    """
    canonical = HDMap("canonical")
    for element in sorted(hdmap.elements(), key=lambda e: e.id):
        canonical.add(element)
    canonical.version = 0
    return encode_map(canonical)


@dataclass
class ClusterWorkload:
    """Shape of the patch/read stream driven against the cluster."""

    n_shards: int = 2
    replicas: int = 1
    transport: str = "process"
    tile_size: float = 250.0
    ops: int = 60
    reads_per_op: int = 2
    sync_every: int = 10
    call_timeout_s: float = 1.5
    lease_s: float = 1.0
    seed: int = 7
    #: > 0 turns on the telemetry plane for the run: each op becomes a
    #: sampled-at-this-rate ``chaos.op`` trace, fault injections are
    #: logged as trace-correlated ``fault_injected`` events, and the
    #: report counts the *poisoned traces* — trace ids that had a fault
    #: land inside them.
    trace_sample_rate: float = 0.0


class ClusterChaosHarness:
    """One ``shard``-class fault plan against one cluster workload."""

    def __init__(self, hdmap: HDMap, plan: FaultPlan,
                 workload: Optional[ClusterWorkload] = None,
                 freshness_bound_s: float = 30.0) -> None:
        self.hdmap = hdmap
        self.plan = plan
        self.workload = workload or ClusterWorkload()
        self.freshness_bound_s = freshness_bound_s
        self._final_map: Optional[HDMap] = None

    # -- deterministic workload -----------------------------------------
    def _build_patches(self) -> List[MapPatch]:
        """The patch stream: a pure function of the workload seed.

        Confidence increases strictly, so HIGHEST_CONFIDENCE conflict
        resolution always keeps the newer op — the outcome cannot depend
        on per-shard version spacing, which is what makes the single-node
        parity replay byte-exact.
        """
        w = self.workload
        rng = np.random.default_rng(w.seed)
        min_x, min_y, max_x, max_y = self.hdmap.bounds()
        pool: List[Tuple[ElementId, np.ndarray]] = []
        patches: List[MapPatch] = []
        for i in range(w.ops):
            patch = MapPatch(source=f"chaos-fleet-{i % 3}",
                             confidence=0.5 + i * 1e-3)
            action = rng.random()
            if action < 0.55 or not pool:
                position = np.array([rng.uniform(min_x, max_x),
                                     rng.uniform(min_y, max_y)])
                eid = ElementId("chaos-sign", i + 1)
                patch.add(TrafficSign(id=eid, position=position,
                                      sign_type=SignType.DIRECTION))
                pool.append((eid, position))
            elif action < 0.8:
                index = int(rng.integers(len(pool)))
                eid, position = pool[index]
                moved = position + rng.normal(0.0, 2.0, size=2)
                patch.replace(TrafficSign(id=eid, position=moved,
                                          sign_type=SignType.DIRECTION))
                pool[index] = (eid, moved)
            else:
                index = int(rng.integers(len(pool)))
                eid, _ = pool.pop(index)
                patch.remove(eid)
            patches.append(patch)
        return patches

    # -- entry points ----------------------------------------------------
    def run(self, label: str = "shard") -> ChaosReport:
        """Drive the faulted stream and certify the five invariants."""
        EVENT_LOG.clear()
        w = self.workload
        tracing = w.trace_sample_rate > 0
        if tracing:
            configure_tracing(enabled=True,
                              sample_rate=w.trace_sample_rate)
        t_start = time.perf_counter()
        # pipeline/replica_reads explicitly on: the invariants are
        # certified against the concurrent read path (kill-mid-pipeline,
        # replica-served reads under the version floor), not the legacy
        # lockstep baseline. With tracing on, the telemetry harvester
        # pulls shard rings in the background so shard-side
        # fault_injected events (the slow fault fires inside the shard
        # process) land in the merged log before the report is built.
        router = ClusterRouter(
            self.hdmap, n_shards=w.n_shards, tile_size=w.tile_size,
            replicas=w.replicas, transport=w.transport,
            call_timeout_s=w.call_timeout_s, lease_s=w.lease_s,
            pipeline=True, replica_reads=True,
            telemetry_interval_s=0.5 if tracing else None)
        try:
            crash = self.plan.point(CLUSTER_SHARD_CRASH)
            slow = self.plan.point(CLUSTER_SLOW_SHARD)
            rebalance = self.plan.point(CLUSTER_REBALANCE)
            client = ClusterMapClient(router)
            tiles = router.tiles()
            acked = 0
            failed_writes = 0
            versions_seen: List[int] = []
            for i, patch in enumerate(self._build_patches()):
                # Each op is one (sampled) trace: a fault rolled inside
                # it emits a trace-correlated fault_injected event, so
                # the report can name exactly which traces a fault
                # poisoned. With tracing off this is NOOP_SPAN and the
                # events simply carry no trace id.
                op_span = TRACER.start_trace("chaos.op", op=i)
                with op_span:
                    if crash.roll("router"):
                        target = i % router.n_shards
                        _log.warning("fault_injected",
                                     fault=CLUSTER_SHARD_CRASH,
                                     shard=target, op=i)
                        if op_span.context is not None:
                            op_span.set("fault", CLUSTER_SHARD_CRASH)
                        router.kill_shard(target)
                    if slow.roll("router"):
                        target = i % router.n_shards
                        _log.warning("fault_injected",
                                     fault=CLUSTER_SLOW_SHARD,
                                     shard=target, op=i)
                        if op_span.context is not None:
                            op_span.set("fault", CLUSTER_SLOW_SHARD)
                        router.slow_shard(
                            target,
                            delay_s=slow.magnitude
                            or w.call_timeout_s * 2,
                            count=1)
                    if rebalance.roll("router"):
                        _log.warning("fault_injected",
                                     fault=CLUSTER_REBALANCE,
                                     shard=router.n_shards, op=i)
                        if op_span.context is not None:
                            op_span.set("fault", CLUSTER_REBALANCE)
                        router.rebalance(router.n_shards + 1)
                    response = router.request(IngestPatch(patch=patch))
                if response.ok:
                    if response.payload.accepted:
                        acked += 1
                    versions_seen.append(response.version)
                else:
                    failed_writes += 1
                # Reads go out as a concurrent burst — many requests in
                # flight on the same pipelined connections, so an
                # injected crash lands mid-pipeline with real overlap.
                burst_versions: List[int] = []
                burst_lock = threading.Lock()

                def one_read(r: int) -> None:
                    tile = tiles[(i * w.reads_per_op + r) % len(tiles)]
                    read = router.request(GetTile(tile=tile, encoded=True))
                    if read.ok:
                        with burst_lock:
                            burst_versions.append(read.version)

                readers = [threading.Thread(target=one_read, args=(r,),
                                            daemon=True)
                           for r in range(w.reads_per_op)]
                for t in readers:
                    t.start()
                for t in readers:
                    t.join()
                # Concurrent observations carry no order between them;
                # sorting within the burst keeps the monotonicity check
                # about the cluster version, not thread scheduling.
                versions_seen.extend(sorted(burst_versions))
                if (i + 1) % w.sync_every == 0:
                    client.sync()
            client.sync()
            consistent = client.is_consistent()
            merged, _vector = router.bootstrap()
            self._final_map = merged
            invariants = self._check_invariants(
                router, merged, versions_seen, consistent)
            per_shard = router.collect_shard_metrics()
            stats = router.stats()
            stats.update(acked_writes=acked, failed_writes=failed_writes,
                         shard_events=len(router.shard_events()))
            if tracing:
                # Final harvest so shard-side fault_injected events (the
                # slow fault fires inside the shard process, under the
                # propagated trace) are merged before we count which
                # traces had a fault land inside them.
                router.harvest_telemetry()
                poisoned = {e["trace_id"] for e
                            in EVENT_LOG.events(event="fault_injected")
                            if e.get("trace_id")}
                stats["poisoned_traces"] = len(poisoned)
                stats["harvested_spans"] = router.telemetry_spans.value
            return ChaosReport(
                fault_class=label, plan=self.plan.describe(),
                fired=self.plan.fired_counts(), invariants=invariants,
                stats=stats,
                serve_stats={"router": router.metrics.snapshot(),
                             "per_shard": {str(k): v for k, v
                                           in per_shard.items()}},
                elapsed_s=time.perf_counter() - t_start)
        finally:
            router.close()
            if tracing:
                configure_tracing(enabled=False)

    def final_map_bytes(self) -> bytes:
        """Canonical merged bytes of the last :meth:`run` (parity probe)."""
        if self._final_map is None:
            raise RuntimeError("run() has not completed yet")
        return canonical_map_bytes(self._final_map)

    def run_plain(self) -> bytes:
        """The same patch stream on a plain single-node MapService; an
        inert-plan :meth:`run` must merge to exactly these bytes."""
        w = self.workload
        server = MapDistributionServer(self.hdmap.copy())
        store = TileStore.build(self.hdmap, w.tile_size)
        service = MapService(server, store, n_workers=2)
        with service:
            for patch in self._build_patches():
                service.request(IngestPatch(patch=patch), timeout=30.0)
        return canonical_map_bytes(server.snapshot())

    # -- invariants ------------------------------------------------------
    def _check_invariants(self, router: ClusterRouter, merged: HDMap,
                          versions_seen: List[int],
                          client_consistent: bool) -> List[InvariantResult]:
        out: List[InvariantResult] = []
        crash_fired = self.plan.point(CLUSTER_SHARD_CRASH).fired

        # 1 -- no lost acked writes: journal replay == cluster state ----
        reference = MapDistributionServer(self.hdmap.copy())
        entries = router.journal_entries()
        for entry in entries:
            reference.ingest(
                MapPatch(ops=[op for _, op in entry.ops],
                         source=entry.source,
                         confidence=entry.confidence),
                policy=ConflictPolicy.LAST_WRITER_WINS)
        reference_bytes = canonical_map_bytes(reference.snapshot())
        merged_bytes = canonical_map_bytes(merged)
        problems = []
        if reference_bytes != merged_bytes:
            ref_ids = {e.id for e in reference.snapshot().elements()}
            got_ids = {e.id for e in merged.elements()}
            problems.append(
                f"cluster state diverges from journal replay "
                f"(missing={sorted(map(str, ref_ids - got_ids))[:5]} "
                f"extra={sorted(map(str, got_ids - ref_ids))[:5]})")
        if not client_consistent:
            problems.append("continuously syncing client did not converge")
        if crash_fired > 0 and router.restarts.value < 1:
            problems.append(f"{crash_fired} crash(es) injected but no "
                            f"shard restart happened")
        out.append(InvariantResult(
            "no_lost_acked_writes", not problems,
            "; ".join(problems) if problems else
            f"journal={len(entries)} entries, "
            f"{len(list(merged.elements()))} elements, "
            f"restarts={router.restarts.value} "
            f"failovers={router.failovers.value}"))

        # 2 -- no duplicate changes in the ownership-filtered view ------
        delta = router.changes_since({i: 0 for i in range(router.n_shards)})
        base_ids = {e.id for e in self.hdmap.elements()}
        home_shard: Dict[ElementId, int] = {}
        present: Dict[ElementId, bool] = {}
        problems = []
        for shard, change in delta.changes():
            eid = change.element_id
            if home_shard.setdefault(eid, shard) != shard:
                problems.append(f"{eid} history spans shards "
                                f"{home_shard[eid]} and {shard}")
                continue
            was = present.get(eid, eid in base_ids)
            if change.change_type is ChangeType.ADDED:
                if was:
                    problems.append(f"{eid} added while present")
                present[eid] = True
            elif change.change_type is ChangeType.REMOVED:
                if not was:
                    problems.append(f"{eid} removed while absent")
                present[eid] = False
            else:  # MODIFIED
                if not was:
                    problems.append(f"{eid} modified while absent")
        out.append(InvariantResult(
            "no_duplicate_changes", not problems,
            "; ".join(problems[:3]) if problems else
            f"{len(delta)} change(s) across {router.n_shards} shard(s), "
            f"each element on one home shard"))

        # 3 -- version monotonicity -------------------------------------
        problems = []
        for index in range(router.n_shards):
            log = router.shard_changelog(index)
            versions = [v for v, _ in log]
            if any(b < a for a, b in zip(versions, versions[1:])):
                problems.append(f"shard {index} log regresses")
            if versions and set(versions) != set(range(1, versions[-1] + 1)):
                problems.append(f"shard {index} log not contiguous "
                                f"(1..{versions[-1]}, "
                                f"{len(set(versions))} distinct)")
        if any(b < a for a, b in zip(versions_seen, versions_seen[1:])):
            problems.append("router-observed cluster version regressed")
        out.append(InvariantResult(
            "version_monotonicity", not problems,
            "; ".join(problems) if problems else
            f"{router.n_shards} contiguous shard logs, "
            f"{len(versions_seen)} router observations non-decreasing"))

        # 4 -- bounded freshness lag ------------------------------------
        snapshot = router.metrics.freshness.snapshot()
        count = int(snapshot.get("count", 0))
        max_s = float(snapshot.get("max_s", 0.0))
        if count == 0:
            out.append(InvariantResult(
                "freshness_lag_bounded", True,
                "no writes acked (vacuous)"))
        else:
            ok = max_s <= self.freshness_bound_s
            out.append(InvariantResult(
                "freshness_lag_bounded", ok,
                f"max submit->ack lag {max_s * 1e3:.1f} ms "
                f"{'<=' if ok else '>'} bound "
                f"{self.freshness_bound_s * 1e3:.0f} ms "
                f"over {count} write(s)", samples=count))

        # 5 -- zero constraint violations served ------------------------
        # The cluster write path has no quarantine surface of its own
        # (the verify gate lives in the single-node ingest pipeline each
        # shard fronts), so here the invariant is certified purely from
        # the merged served state: a full constraint scan must find no
        # ERROR in what clients would bootstrap.
        out.append(check_served_map_clean(merged))
        return out
