"""Append-only record journal: durable bookkeeping for streaming pipelines.

The survey's maintenance loop assumes observations and failures are never
silently lost — SLAMCU reports every detected change to the database [41],
and the MEC design [47] buffers crowd reports at the edge before they are
aggregated. :class:`RecordJournal` is the storage primitive behind that:
an append-only, thread-safe log of plain-dict records with optional JSONL
persistence, used by the ingest pipeline's dead-letter queue so poison
observations remain inspectable and replayable after the run.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterator, List, Optional

from repro.errors import StorageError


class RecordJournal:
    """A thread-safe append-only log of JSON-serializable dict records.

    Records are kept in order in memory; when ``path`` is given, every
    append is also written through as one JSON line, so a crashed process
    leaves a complete on-disk trail. Replaying never mutates the journal.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, object]] = []
        self._path = path
        self._fh = None
        if path is not None:
            try:
                self._fh = open(path, "a", encoding="utf-8")
            except OSError as exc:
                raise StorageError(f"cannot open journal {path!r}: {exc}") \
                    from exc

    def append(self, record: Dict[str, object]) -> int:
        """Append one record; returns its sequence number (0-based)."""
        if not isinstance(record, dict):
            raise StorageError("journal records must be dicts")
        with self._lock:
            seq = len(self._records)
            self._records.append(dict(record))
            if self._fh is not None:
                self._fh.write(json.dumps(record, default=str) + "\n")
                self._fh.flush()
            return seq

    def replay(self) -> List[Dict[str, object]]:
        """A point-in-time copy of every record, in append order."""
        with self._lock:
            return [dict(r) for r in self._records]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.replay())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    @staticmethod
    def load(path: str) -> "RecordJournal":
        """Rebuild a journal's in-memory state from its JSONL file."""
        journal = RecordJournal()
        try:
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        journal.append(json.loads(line))
        except OSError as exc:
            raise StorageError(f"cannot read journal {path!r}: {exc}") \
                from exc
        return journal
