"""E21 — Qi et al. [47]: distributed crowd-sensing map update via RSU/MEC.

Paper: MEC servers at roadside units pre-process vehicle uploads against
their map tile and forward only extracted changes to the central node.
Shape: the central node receives orders of magnitude fewer bytes than the
raw-upload baseline while the same changes are found.
"""

import numpy as np
from conftest import once

from repro.core import ChangeType
from repro.eval import ResultTable
from repro.update.mec import CentralAggregator, build_rsu_grid
from repro.world import ChangeSpec, apply_changes, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=4000.0, sign_spacing=120.0)
    scenario = apply_changes(hw, ChangeSpec(add_signs=4, remove_signs=4), rng)
    prior = scenario.prior
    servers = build_rsu_grid(prior, tile_size=500.0)
    central = CentralAggregator()

    reality_signs = list(scenario.reality.signs())
    prior_signs = list(prior.signs())
    # 30 vehicles upload raw detections to whichever RSU covers them.
    for _ in range(30):
        for region, server in servers:
            x0, y0, x1, y1 = region.bounds
            visible = [s.id for s in prior_signs
                       if x0 <= s.position[0] < x1 and y0 <= s.position[1] < y1]
            detections = [
                s.position + rng.normal(0, 0.3, 2)
                for s in reality_signs
                if x0 <= s.position[0] < x1 and y0 <= s.position[1] < y1
                and rng.uniform() < 0.85
            ]
            server.ingest(detections, visible)
    for _, server in servers:
        central.receive(server.extract_changes())

    from repro.core.changes import match_changes

    truth = [c for c in scenario.true_changes
             if c.change_type in (ChangeType.ADDED, ChangeType.REMOVED)]
    counts = match_changes(central.changes, truth, radius=4.0)
    only_servers = [s for _, s in servers]
    return central, counts, len(truth), only_servers


def test_e21_mec_distributed_update(benchmark, rng):
    central, counts, n_truth, servers = once(benchmark, _experiment, rng)

    table = ResultTable("E21", "RSU/MEC distributed crowd-sensing [47]")
    raw = central.centralized_baseline_bytes(servers)
    table.add("raw uploads to central (KB)", "(baseline)",
              f"{raw / 1024:.0f}", ok=None)
    table.add("change records to central (KB)", "(tiny)",
              f"{central.bytes_received / 1024:.2f}",
              ok=central.bytes_received < raw / 10)
    table.add("compression factor", ">> 10x",
              f"{central.compression_factor(servers):.0f}x",
              ok=central.compression_factor(servers) > 10)
    recall = counts["tp"] / max(n_truth, 1)
    table.add("changes recovered centrally", f"{n_truth}",
              f"{counts['tp']} ({100 * recall:.0f} %)", ok=recall >= 0.6)
    table.print()
    assert table.all_ok()
