"""`IngestPipeline`: the streaming fleet-to-map maintenance loop.

Wires the subsystem together: producers :meth:`submit` observations into
the tile-partitioned :class:`~repro.ingest.bus.ObservationBus`; a pool of
stage workers (one worker owns a disjoint set of partitions, so per-tile
state is single-writer) leases tile-coherent batches and runs them through
validate -> associate -> fuse -> classify -> emit; confirmed patches go to
the idempotent :class:`~repro.ingest.publisher.PatchPublisher`, at which
point the serving layer's ``ChangesSince`` sees them.

Delivery semantics (documented in DESIGN.md and tested in
``tests/test_ingest.py``):

- *at-least-once*: a leased batch is redelivered after a nack (stage
  failure, exponential backoff) or an expired lease (worker crash);
- *bounded retries*: a batch that keeps failing lands in the dead-letter
  queue after ``max_attempts`` deliveries — poison never wedges a
  partition;
- *exactly-once effects*: observation dedup keys upstream and patch
  idempotency keys downstream collapse redeliveries, so no duplicate
  patch is ever published;
- *self-healing*: a supervisor thread requeues expired leases, restarts
  crashed workers, and keeps the queue-depth gauges current.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.tiles import TileId
from repro.ingest.breaker import CircuitBreaker, StageCircuitOpen
from repro.ingest.bus import ObservationBus
from repro.ingest.metrics import IngestMetrics
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER
from repro.ingest.observation import Observation, ObservationBatch
from repro.ingest.publisher import PatchPublisher
from repro.core.validation import ConstraintEngine
from repro.ingest.stages import (
    AssociateStage,
    ClassifyStage,
    EmitStage,
    FuseStage,
    IngestConfig,
    TileState,
    ValidateStage,
    VerifyStage,
    _PATCHES,
)
from repro.ingest.verify import QuarantineStore, VerifyGate
from repro.serve.metrics import ServiceMetrics
from repro.storage.journal import RecordJournal
from repro.update.dbn import DiscreteDBN
from repro.update.distribution import ConflictPolicy, MapDistributionServer
from repro.update.incremental_fusion import IncrementalFuser


_log = get_logger("ingest.pipeline")


class DeadLetterQueue:
    """Terminal parking lot for poison batches, journaled for forensics."""

    def __init__(self, journal: Optional[RecordJournal] = None) -> None:
        self.journal = journal or RecordJournal()
        self._lock = threading.Lock()
        self._batches: List[Tuple[ObservationBatch, str]] = []

    def push(self, batch: ObservationBatch, reason: str) -> None:
        _log.error("batch_dead_lettered", batch_id=batch.batch_id,
                   tile=str(batch.tile), partition=batch.partition,
                   attempts=batch.attempts, observations=len(batch),
                   reason=reason)
        self.journal.append({
            "batch_id": batch.batch_id,
            "tile": str(batch.tile),
            "partition": batch.partition,
            "attempts": batch.attempts,
            "observations": len(batch),
            "dedup_keys": [f"{v}#{s}" for v, s in
                           (o.dedup_key for o in batch.observations)],
            "reason": reason,
        })
        with self._lock:
            self._batches.append((batch, reason))

    def batches(self) -> List[Tuple[ObservationBatch, str]]:
        with self._lock:
            return list(self._batches)

    def __len__(self) -> int:
        with self._lock:
            return len(self._batches)


class IngestPipeline:
    """Streaming observation ingestion with staged, supervised workers."""

    def __init__(self, server: MapDistributionServer,
                 tile_size: float = 250.0,
                 n_workers: int = 2,
                 n_partitions: Optional[int] = None,
                 capacity_per_partition: int = 2048,
                 dedup_window: int = 16384,
                 lease_timeout_s: float = 2.0,
                 max_attempts: int = 4,
                 backoff_base_s: float = 0.02,
                 max_batch: int = 32,
                 policy: Optional[ConflictPolicy] = None,
                 config: Optional[IngestConfig] = None,
                 service_metrics: Optional[ServiceMetrics] = None,
                 dead_letter_journal: Optional[RecordJournal] = None,
                 stage_latency_s: float = 0.0,
                 delivery_hook: Optional[
                     Callable[[ObservationBatch], None]] = None,
                 supervisor_tick_s: float = 0.02,
                 stage_failure_threshold: int = 6,
                 breaker_cooldown_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic,
                 verify: bool = True,
                 constraint_engine: Optional[ConstraintEngine] = None,
                 quarantine_path: Optional[str] = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.server = server
        self.n_workers = n_workers
        self.n_partitions = n_partitions or max(4, n_workers)
        if self.n_partitions < n_workers:
            raise ValueError("need at least one partition per worker")
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.max_batch = max_batch
        self.stage_latency_s = stage_latency_s
        self.supervisor_tick_s = supervisor_tick_s
        #: test instrumentation: called at delivery time, before the
        #: guarded stage run — an exception here kills the worker thread
        #: (simulating a crash) and exercises the supervisor restart path.
        self.delivery_hook = delivery_hook
        self._clock = clock

        self.config = config or IngestConfig()
        self.metrics = IngestMetrics()
        self.bus = ObservationBus(tile_size=tile_size,
                                  n_partitions=self.n_partitions,
                                  capacity_per_partition=capacity_per_partition,
                                  dedup_window=dedup_window,
                                  lease_timeout_s=lease_timeout_s,
                                  clock=clock)
        self.prior = server.snapshot()
        # The mandatory constraint gate between fuse and publish
        # (ROADMAP item 4): one VerifyGate shared by the verify stage
        # and the publisher backstop, so direct publisher callers (e.g.
        # chaos harnesses) cannot route around it. `verify=False` exists
        # only to measure the gate's own overhead (ingest-bench A/B).
        self.verify_gate: Optional[VerifyGate] = None
        if verify:
            self.verify_gate = VerifyGate(
                self.prior, engine=constraint_engine, metrics=self.metrics,
                quarantine=QuarantineStore(quarantine_path))
        self.publisher = PatchPublisher(
            server, policy=policy, metrics=self.metrics,
            service_metrics=service_metrics,
            add_conflation_radius=self.config.conflation_radius_m,
            clock=clock, verifier=self.verify_gate)
        self.stages = [
            ValidateStage(),
            AssociateStage(self.prior, self.config),
            FuseStage(self.config),
            ClassifyStage(self.config),
            EmitStage(server.new_element_id, self.config, prior=self.prior),
        ]
        if self.verify_gate is not None:
            self.stages.append(VerifyStage(self.verify_gate))
        # One circuit breaker per stage, shared by all workers: a stage
        # that fails `stage_failure_threshold` consecutive deliveries is
        # declared systemically down and further batches are nacked fast
        # (without burning their retry budget) until a half-open probe
        # succeeds. Threshold <= 0 disables breakers entirely.
        self.stage_failure_threshold = stage_failure_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.breakers: Dict[str, CircuitBreaker] = {}
        if stage_failure_threshold > 0:
            self.breakers = {
                stage.name: CircuitBreaker(
                    stage.name,
                    failure_threshold=stage_failure_threshold,
                    cooldown_s=breaker_cooldown_s, clock=clock)
                for stage in self.stages}
        self.dead_letters = DeadLetterQueue(dead_letter_journal)
        self._states: Dict[TileId, TileState] = {}
        self._states_lock = threading.Lock()
        self._workers: List[Optional[threading.Thread]] = \
            [None] * self.n_workers
        self._supervisor: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._closing = False
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "IngestPipeline":
        if self._started:
            return self
        self._started = True
        for i in range(self.n_workers):
            self._spawn_worker(i)
        self._supervisor = threading.Thread(target=self._supervise,
                                            name="ingest-supervisor",
                                            daemon=True)
        self._supervisor.start()
        return self

    def _spawn_worker(self, idx: int) -> None:
        t = threading.Thread(target=self._worker_loop, args=(idx,),
                             name=f"ingest-worker-{idx}", daemon=True)
        self._workers[idx] = t
        t.start()

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Block until every published observation is fully processed."""
        deadline = self._clock() + timeout_s
        while self._clock() < deadline:
            if self.bus.is_drained():
                return True
            time.sleep(0.005)
        return self.bus.is_drained()

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        if not self._started:
            return
        if drain:
            self.drain(timeout_s)
        self._closing = True
        self.bus.close()
        for t in self._workers:
            if t is not None:
                t.join(timeout=timeout_s)
        self._stop_event.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout_s)
        self._started = False

    def __enter__(self) -> "IngestPipeline":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- producer side --------------------------------------------------
    def submit(self, obs: Observation) -> bool:
        """Publish one observation; returns False if deduplicated."""
        return self.bus.publish(obs)

    # -- per-tile state -------------------------------------------------
    def _state_for(self, tile: TileId) -> TileState:
        # One tile maps to one partition maps to one worker, so after
        # creation the state is single-writer; the lock only guards the
        # dict against concurrent first-touch of *different* tiles.
        with self._states_lock:
            state = self._states.get(tile)
            if state is None:
                state = self._seed_state(tile)
                self._states[tile] = state
            return state

    def _seed_state(self, tile: TileId) -> TileState:
        """Install the prior map's signs of this tile: fuser tracks plus
        one PRESENT/REMOVED presence chain each (SLAMCU's per-feature
        DBN).

        Bounds are inflated by ``seed_margin_m``: a noisy detection of a
        sign that sits just across the tile boundary must still match a
        seeded track here, or it would cluster into a phantom addition.
        Margin copies only ever *see* detections (misses are reported at
        the sign's true tile), so they can never accrue removal belief.
        """
        state = TileState(
            tile=tile,
            fuser=IncrementalFuser(
                match_radius=self.config.match_radius,
                confidence_gain=self.config.fuser_confidence_gain,
                confidence_loss=self.config.fuser_confidence_loss))
        min_x, min_y, max_x, max_y = self.bus.scheme.tile_bounds(tile)
        margin = self.config.seed_margin_m
        for sign in self.prior.signs():
            x, y = float(sign.position[0]), float(sign.position[1])
            if not (min_x - margin <= x < max_x + margin
                    and min_y - margin <= y < max_y + margin):
                continue
            state.fuser.seed(sign.id, sign.position,
                             self.config.seed_sigma, t=0.0)
            state.dbn[sign.id] = DiscreteDBN.presence_chain()
        state.seeded = True
        return state

    # -- consumer side --------------------------------------------------
    def _worker_loop(self, worker_idx: int) -> None:
        partitions = [p for p in range(self.n_partitions)
                      if p % self.n_workers == worker_idx]
        while True:
            progressed = False
            for p in partitions:
                batch = self.bus.poll(p, self.max_batch, timeout=0.01)
                if batch is not None:
                    self._deliver(batch, worker_idx)
                    progressed = True
            if self._closing and not progressed and \
                    all(self.bus.partition_drained(p) for p in partitions):
                return

    def _deliver(self, batch: ObservationBatch,
                 worker_idx: Optional[int] = None) -> None:
        # The hook runs un-guarded on purpose: an exception here escapes
        # the loop and kills the worker (a simulated crash), leaving the
        # batch leased so the supervisor redelivers it.
        if self.delivery_hook is not None:
            self.delivery_hook(batch)
        try:
            self._process(batch, worker_idx)
        except StageCircuitOpen as exc:
            # Not the batch's fault: the stage is systemically down.
            # Redeliver after the breaker cooldown without charging the
            # batch's retry budget.
            self.bus.nack(batch, exc.retry_after_s, count_attempt=False)
            self.metrics.breaker_fast_failures.add()
            return
        except Exception as exc:
            # Stage failure: retry with exponential backoff, then DLQ.
            if batch.attempts + 1 >= self.max_attempts:
                self.bus.ack(batch)  # terminally failed; release the lease
                self.dead_letters.push(batch, f"{type(exc).__name__}: {exc}")
                self.metrics.dead_letters.add()
            else:
                delay = self.backoff_base_s * (2 ** batch.attempts)
                self.bus.nack(batch, delay)
                self.metrics.batch_retries.add()
                _log.warning("batch_retry", batch_id=batch.batch_id,
                             tile=str(batch.tile), attempt=batch.attempts,
                             backoff_s=round(delay, 6),
                             error=f"{type(exc).__name__}: {exc}")
            return
        self.bus.ack(batch)
        self.metrics.batches_processed.add()
        self.metrics.observations_processed.add(len(batch))

    def _process(self, batch: ObservationBatch,
                 worker_idx: Optional[int] = None) -> None:
        ctx = batch.trace_ctx
        if ctx is not None:
            # Reconstruct the queue wait as its own (backdated) span, so a
            # trace dump accounts for the full enqueue-to-publish lag.
            with TRACER.continue_from(ctx, "ingest.wait",
                                      start_s=batch.enqueued_at):
                pass
        with TRACER.continue_from(ctx, "ingest.batch") as bspan:
            if bspan.context is not None:
                bspan.set("batch_id", batch.batch_id)
                bspan.set("tile", str(batch.tile))
                bspan.set("observations", len(batch))
                bspan.set("attempt", batch.attempts)
                if worker_idx is not None:
                    bspan.set("worker", worker_idx)
            if self.stage_latency_s > 0:
                time.sleep(self.stage_latency_s)  # modelled I/O (GIL released)
            state = self._state_for(batch.tile)
            carry: dict = {}
            for stage in self.stages:
                breaker = self.breakers.get(stage.name)
                if breaker is not None:
                    breaker.acquire()  # may raise StageCircuitOpen
                t0 = self._clock()
                try:
                    with TRACER.span(f"ingest.stage.{stage.name}"):
                        stage.process(state, batch, carry)
                except Exception:
                    if breaker is not None and breaker.record_failure():
                        self.metrics.breaker_opens.add()
                    raise
                if breaker is not None:
                    breaker.record_success()
                self.metrics.record_stage(stage.name, self._clock() - t0,
                                          worker=worker_idx)
            for confirmed in carry.get(_PATCHES, []):
                self.publisher.publish(confirmed)

    # -- supervision ----------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop_event.is_set():
            redelivered = self.bus.redeliver_expired()
            if redelivered:
                _log.warning("leases_redelivered", batches=redelivered)
            for p in range(self.n_partitions):
                self.metrics.depth_gauge(p).set(self.bus.depth(p))
            self.metrics.in_flight.set(self.bus.in_flight())
            if not self._closing:
                for i, t in enumerate(self._workers):
                    if t is not None and not t.is_alive():
                        self.metrics.worker_restarts.add()
                        _log.error("worker_restarted", worker=i)
                        self._spawn_worker(i)
            self._stop_event.wait(self.supervisor_tick_s)

    # -- observability --------------------------------------------------
    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "ingest") -> None:
        """Register pipeline + bus metrics under canonical dotted names."""
        self.metrics.register_into(registry, prefix)
        registry.register(f"{prefix}.bus.published", self.bus.published)
        registry.register(f"{prefix}.bus.deduplicated",
                          self.bus.deduplicated)
        registry.register(f"{prefix}.bus.shed_oldest", self.bus.shed_oldest)
        registry.register(f"{prefix}.bus.redelivered", self.bus.redelivered)
        registry.register(f"{prefix}.bus.acked_batches",
                          self.bus.acked_batches)

    def stats(self) -> Dict[str, object]:
        """Pipeline metrics merged with the bus's producer-side counters."""
        out = self.metrics.as_dict()
        observations = dict(out["observations"])  # type: ignore[arg-type]
        observations.update({
            "published": self.bus.published.value,
            "deduplicated": self.bus.deduplicated.value,
            "shed": self.bus.shed_oldest.value,
        })
        out["observations"] = observations
        batches = dict(out["batches"])  # type: ignore[arg-type]
        batches.update({
            "redelivered": self.bus.redelivered.value,
            "acked": self.bus.acked_batches.value,
        })
        out["batches"] = batches
        out["patches"] = dict(out["patches"])  # type: ignore[arg-type]
        verify = dict(out["verify"])  # type: ignore[arg-type]
        if self.verify_gate is not None:
            verify["quarantine_records"] = len(self.verify_gate.quarantine)
        out["verify"] = verify
        breaker = dict(out["breaker"])  # type: ignore[arg-type]
        breaker["stages"] = {name: b.state
                             for name, b in sorted(self.breakers.items())}
        out["breaker"] = breaker
        out["queue_depth_total"] = self.bus.total_depth()
        return out
