"""Core data model: ids, elements, the HDMap container and its layers."""

import numpy as np
import pytest

from repro.core import (
    BoundaryType,
    ElementId,
    HDMap,
    IdAllocator,
    Lane,
    LaneBoundary,
    RegulatoryElement,
    RoadSegment,
    RuleType,
    SignType,
    TrafficLight,
    TrafficSign,
)
from repro.core.elements import Kind, LightState, Node, Pole
from repro.errors import MapModelError, UnknownElementError
from repro.geometry.polyline import straight


class TestIds:
    def test_parse_roundtrip(self):
        eid = ElementId("lane", 42)
        assert ElementId.parse(str(eid)) == eid

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            ElementId.parse("lane42")

    def test_allocator_monotonic(self):
        alloc = IdAllocator()
        a = alloc.allocate("lane")
        b = alloc.allocate("lane")
        assert b.num == a.num + 1

    def test_allocator_respects_reserved(self):
        alloc = IdAllocator()
        alloc.reserve(ElementId("lane", 10))
        nxt = alloc.allocate("lane")
        assert nxt.num == 11

    def test_ids_sortable(self):
        ids = [ElementId("lane", 3), ElementId("lane", 1), ElementId("boundary", 2)]
        assert sorted(ids)[0].kind == "boundary"


class TestElements:
    def test_sign_defaults(self):
        sign = TrafficSign(id=ElementId("sign", 1),
                           position=np.array([1.0, 2.0]))
        assert sign.height == pytest.approx(2.2)
        assert sign.reflectivity > 0.8  # retro-reflective

    def test_light_state_cycle(self):
        light = TrafficLight(id=ElementId("light", 1),
                             position=np.zeros(2),
                             cycle=(10.0, 2.0, 8.0), phase_offset=0.0)
        assert light.state_at(5.0) is LightState.RED
        assert light.state_at(11.0) is LightState.YELLOW
        assert light.state_at(15.0) is LightState.GREEN
        assert light.state_at(25.0) is LightState.RED  # wrapped

    def test_lane_contains_point(self):
        lane = Lane(id=ElementId("lane", 1),
                    centerline=straight([0, 0], [50, 0]), width=3.5)
        assert lane.contains_point(np.array([25.0, 1.0]))
        assert not lane.contains_point(np.array([25.0, 3.0]))

    def test_boundary_crossable(self):
        assert BoundaryType.DASHED.is_crossable
        assert not BoundaryType.SOLID.is_crossable

    def test_landmark_position3d(self):
        pole = Pole(id=ElementId("pole", 1), position=np.array([1.0, 2.0]))
        assert np.allclose(pole.position3d(), [1.0, 2.0, 6.0])


@pytest.fixture
def small_map():
    hdmap = HDMap("test")
    left = hdmap.create(LaneBoundary, line=straight([0, 1.75], [100, 1.75]),
                        boundary_type=BoundaryType.SOLID)
    right = hdmap.create(LaneBoundary, line=straight([0, -1.75], [100, -1.75]),
                         boundary_type=BoundaryType.ROAD_EDGE)
    lane_a = hdmap.create(Lane, centerline=straight([0, 0], [100, 0]),
                          left_boundary=left.id, right_boundary=right.id)
    lane_b = hdmap.create(Lane, centerline=straight([100, 0], [200, 0]))
    hdmap.create(TrafficSign, position=np.array([50.0, 6.0]),
                 sign_type=SignType.SPEED_LIMIT, value=13.89)
    return hdmap, lane_a, lane_b


class TestHDMap:
    def test_add_get_contains(self, small_map):
        hdmap, lane_a, _ = small_map
        assert lane_a.id in hdmap
        assert hdmap.get(lane_a.id) is lane_a

    def test_duplicate_id_rejected(self, small_map):
        hdmap, lane_a, _ = small_map
        with pytest.raises(MapModelError):
            hdmap.add(lane_a)

    def test_unknown_get_raises(self, small_map):
        hdmap, *_ = small_map
        with pytest.raises(UnknownElementError):
            hdmap.get(ElementId("lane", 999))

    def test_remove(self, small_map):
        hdmap, lane_a, _ = small_map
        hdmap.remove(lane_a.id)
        assert lane_a.id not in hdmap

    def test_replace_reindexes(self, small_map):
        hdmap, lane_a, _ = small_map
        moved = Lane(id=lane_a.id, centerline=straight([0, 50], [100, 50]))
        hdmap.replace(moved)
        lane, d = hdmap.nearest_lane(50.0, 50.0)
        assert lane.id == lane_a.id
        assert d < 0.5

    def test_typed_iterators(self, small_map):
        hdmap, *_ = small_map
        assert len(list(hdmap.lanes())) == 2
        assert len(list(hdmap.boundaries())) == 2
        assert len(list(hdmap.signs())) == 1

    def test_nearest_lane(self, small_map):
        hdmap, lane_a, lane_b = small_map
        lane, d = hdmap.nearest_lane(10.0, 1.0)
        assert lane.id == lane_a.id
        assert d == pytest.approx(1.0)

    def test_lanes_containing(self, small_map):
        hdmap, lane_a, _ = small_map
        hits = hdmap.lanes_containing(10.0, 0.5)
        assert [l.id for l in hits] == [lane_a.id]

    def test_landmarks_in_radius_exact(self, small_map):
        hdmap, *_ = small_map
        assert len(hdmap.landmarks_in_radius(50.0, 0.0, 10.0)) == 1
        assert len(hdmap.landmarks_in_radius(50.0, 0.0, 3.0)) == 0

    def test_successors_via_endpoint_matching(self, small_map):
        hdmap, lane_a, lane_b = small_map
        assert hdmap.successors(lane_a.id) == [lane_b.id]
        assert hdmap.predecessors(lane_b.id) == [lane_a.id]

    def test_topology_rebuilds_after_mutation(self, small_map):
        hdmap, lane_a, lane_b = small_map
        assert hdmap.successors(lane_a.id) == [lane_b.id]
        hdmap.remove(lane_b.id)
        assert hdmap.successors(lane_a.id) == []

    def test_counts_by_kind(self, small_map):
        hdmap, *_ = small_map
        counts = hdmap.counts_by_kind()
        assert counts["lane"] == 2
        assert counts["sign"] == 1

    def test_bounds(self, small_map):
        hdmap, *_ = small_map
        min_x, min_y, max_x, max_y = hdmap.bounds()
        assert min_x <= 0 and max_x >= 200

    def test_copy_is_independent(self, small_map):
        hdmap, lane_a, _ = small_map
        clone = hdmap.copy()
        clone.remove(lane_a.id)
        assert lane_a.id in hdmap
        assert lane_a.id not in clone

    def test_empty_map_nearest_lane_raises(self):
        with pytest.raises(MapModelError):
            HDMap("empty").nearest_lane(0.0, 0.0)

    def test_regulatory_speed_limit(self, small_map):
        hdmap, lane_a, _ = small_map
        hdmap.create_regulatory(rule_type=RuleType.SPEED_LIMIT,
                                lanes=[lane_a.id], value=8.33)
        assert hdmap.effective_speed_limit(lane_a.id) == pytest.approx(8.33)

    def test_rules_for_lane(self, small_map):
        hdmap, lane_a, lane_b = small_map
        rule = hdmap.create_regulatory(rule_type=RuleType.STOP,
                                       lanes=[lane_a.id])
        assert [r.id for r in hdmap.rules_for_lane(lane_a.id)] == [rule.id]
        assert hdmap.rules_for_lane(lane_b.id) == []

    def test_lane_graph_has_lane_change_edges(self, highway):
        graph = highway.lane_graph()
        changes = [d for _, _, d in graph.edges(data=True)
                   if d["move"] == "change"]
        assert changes  # multi-lane highway must offer lane changes

    def test_total_lane_length(self, small_map):
        hdmap, *_ = small_map
        assert hdmap.total_lane_length() == pytest.approx(200.0)
