"""Change scenarios: a prior map, a changed reality, and the ground truth diff.

Map-maintenance experiments (SLAMCU [41], Pannen et al. [42], [44], Diff-Net
[46], Tas et al. [10]) all share one setup: vehicles drive a *reality* that
has drifted from the *prior map*, and the pipeline must detect/apply the
difference. :class:`Scenario` packages that setup with the ground-truth
change list for scoring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.changes import ChangeType, MapChange, diff_maps
from repro.core.elements import PointLandmark, SignType, TrafficSign
from repro.core.hdmap import HDMap


class ChangeKind(enum.Enum):
    ADD_SIGN = "add_sign"
    REMOVE_SIGN = "remove_sign"
    MOVE_SIGN = "move_sign"
    CONSTRUCTION_SITE = "construction_site"  # cluster of construction signs


@dataclass
class ChangeSpec:
    """How many changes of each kind to inject."""

    add_signs: int = 0
    remove_signs: int = 0
    move_signs: int = 0
    move_distance: float = 3.0
    construction_sites: int = 0
    construction_signs_per_site: int = 4


@dataclass
class Scenario:
    """A maintenance scenario: prior map, changed reality, true changes."""

    prior: HDMap
    reality: HDMap
    true_changes: List[MapChange] = field(default_factory=list)

    @property
    def n_changes(self) -> int:
        return len(self.true_changes)


def _random_roadside_position(hdmap: HDMap, rng: np.random.Generator,
                              side_offset: float = 8.0) -> np.ndarray:
    lanes = list(hdmap.lanes())
    lane = lanes[int(rng.integers(0, len(lanes)))]
    s = float(rng.uniform(0.0, lane.length))
    base = lane.centerline.point_at(s)
    normal = lane.centerline.normal_at(s)
    return base - side_offset * normal


def apply_changes(base: HDMap, spec: ChangeSpec,
                  rng: np.random.Generator) -> Scenario:
    """Clone ``base``, inject the requested changes, return the scenario.

    The returned ``prior`` is the unchanged clone (what the fleet's map
    database believes); ``reality`` is what the world actually looks like.
    """
    prior = base.copy(name=f"{base.name}-prior")
    reality = base.copy(name=f"{base.name}-reality")

    signs = [e for e in reality.signs()]
    rng.shuffle(signs)

    removed = 0
    for sign in signs:
        if removed >= spec.remove_signs:
            break
        reality.remove(sign.id)
        removed += 1

    moved = 0
    for sign in signs[removed:]:
        if moved >= spec.move_signs:
            break
        angle = float(rng.uniform(0, 2 * np.pi))
        delta = spec.move_distance * np.array([np.cos(angle), np.sin(angle)])
        sign.position = sign.position + delta
        reality.replace(sign)
        moved += 1

    for _ in range(spec.add_signs):
        pos = _random_roadside_position(reality, rng)
        reality.create(TrafficSign, position=pos,
                       sign_type=SignType.DIRECTION,
                       facing=float(rng.uniform(-np.pi, np.pi)))

    for _ in range(spec.construction_sites):
        centre = _random_roadside_position(reality, rng, side_offset=5.0)
        for k in range(spec.construction_signs_per_site):
            jitter = rng.normal(0.0, 6.0, size=2)
            reality.create(TrafficSign, position=centre + jitter,
                           sign_type=SignType.CONSTRUCTION,
                           facing=float(rng.uniform(-np.pi, np.pi)))

    true_changes = diff_maps(prior, reality)
    return Scenario(prior=prior, reality=reality, true_changes=true_changes)
