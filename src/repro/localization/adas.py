"""ADAS-sensor map-based localization (Shin et al. [54]).

Fuses the low-cost sensors a production vehicle already has — GNSS,
wheel odometry, camera lane detection, and sparse landmark detections —
in one EKF with *verification gates*: every correction is chi-square
gated, and a correction stream that keeps failing its gate is suspended
(the paper's safeguard against feeding map-matching errors back into the
filter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.hdmap import HDMap
from repro.geometry.transform import SE2
from repro.localization.ekf import PoseEKF
from repro.localization.map_matching import LaneMatcher
from repro.sensors.camera import LaneObservation, SignDetection
from repro.sensors.gnss import GnssFix


@dataclass
class GateMonitor:
    """Tracks gate pass/fail per correction stream; suspends flaky ones."""

    fail_limit: int = 4
    recover_after: int = 10
    _fails: Dict[str, int] = field(default_factory=dict)
    _suspended: Dict[str, int] = field(default_factory=dict)

    def allowed(self, stream: str) -> bool:
        remaining = self._suspended.get(stream, 0)
        if remaining > 0:
            self._suspended[stream] = remaining - 1
            return False
        return True

    def report(self, stream: str, passed: bool) -> None:
        if passed:
            self._fails[stream] = 0
            return
        fails = self._fails.get(stream, 0) + 1
        self._fails[stream] = fails
        if fails >= self.fail_limit:
            self._suspended[stream] = self.recover_after
            self._fails[stream] = 0


class AdasFusionLocalizer:
    """EKF fusion of GNSS + odometry + lane camera + landmarks with gates."""

    def __init__(self, hdmap: HDMap, initial: SE2,
                 sigma_xy: float = 2.0, sigma_theta: float = 0.1) -> None:
        self.map = hdmap
        self.ekf = PoseEKF(initial, sigma_xy, sigma_theta)
        self.matcher = LaneMatcher(hdmap)
        self.gates = GateMonitor()

    def predict(self, ds: float, dtheta: float) -> None:
        self.ekf.predict(ds, dtheta,
                         sigma_ds=0.03 + 0.02 * abs(ds),
                         sigma_dtheta=0.005 + 0.04 * abs(dtheta))

    def update_gnss(self, fix: GnssFix) -> bool:
        if not self.gates.allowed("gnss"):
            return False
        ok = self.ekf.update_position(fix.position, fix.sigma)
        self.gates.report("gnss", ok)
        return ok

    def update_lane(self, obs: LaneObservation, sigma: float = 0.15) -> bool:
        if not self.gates.allowed("lane"):
            return False
        offset = obs.lane_centre_offset
        if offset is None:
            return False
        match = self.matcher.match(self.ekf.pose)
        if match is None or match.ambiguous:
            return False
        lane = self.map.get(match.lane_id)
        point = lane.centerline.point_at(match.station)  # type: ignore[union-attr]
        heading = lane.centerline.heading_at(match.station)  # type: ignore[union-attr]
        ok = self.ekf.update_lateral(offset, heading, point, sigma)
        self.gates.report("lane", ok)
        return ok

    def update_landmarks(self, detections: Sequence[SignDetection]) -> int:
        if not self.gates.allowed("landmark"):
            return 0
        pose = self.ekf.pose
        landmarks = [lm for lm in self.map.landmarks_in_radius(
            pose.x, pose.y, 70.0) if lm.height > 0.05]
        if not landmarks:
            return 0
        positions = np.array([lm.position for lm in landmarks])
        applied = 0
        any_pass = False
        for det in detections:
            world = pose.apply(det.body_frame_position())
            dists = np.hypot(positions[:, 0] - world[0],
                             positions[:, 1] - world[1])
            i = int(np.argmin(dists))
            if dists[i] > 3.5:
                continue
            ok = self.ekf.update_landmark(
                positions[i], det.bearing, det.range,
                sigma_bearing=np.radians(1.0),
                sigma_range=max(0.3, 0.06 * det.range),
            )
            any_pass |= ok
            applied += int(ok)
            pose = self.ekf.pose
        self.gates.report("landmark", any_pass or applied == 0)
        return applied

    @property
    def pose(self) -> SE2:
        return self.ekf.pose

    def position_sigma(self) -> float:
        return self.ekf.position_sigma()
