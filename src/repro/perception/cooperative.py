"""Cooperative roadside perception (Masi et al. [63]).

A roadside camera with a fixed, well-calibrated pose observes a conflict
area; an approaching vehicle's LiDAR observes the same objects from street
level. Fusing both streams in per-object Kalman trackers — associated in
the shared HD-map frame — improves the estimated object states over either
source alone, especially for objects occluded from the vehicle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.transform import SE2
from repro.sensors.lidar import Obstacle


@dataclass
class RoadsideCamera:
    """A fixed infrastructure sensor over a coverage disc."""

    position: np.ndarray
    coverage_radius: float = 60.0
    sigma: float = 0.35
    detection_prob: float = 0.95

    def observe(self, obstacles: Sequence[Obstacle],
                rng: np.random.Generator) -> List[np.ndarray]:
        out = []
        for ob in obstacles:
            if float(np.hypot(*(ob.position - self.position))) > self.coverage_radius:
                continue
            if rng.uniform() > self.detection_prob:
                continue
            out.append(ob.position + rng.normal(0.0, self.sigma, size=2))
        return out


@dataclass
class TrackedObject:
    """Constant-velocity Kalman track of one object."""

    track_id: int
    state: np.ndarray  # [x, y, vx, vy]
    covariance: np.ndarray  # (4, 4)
    hits: int = 1

    @property
    def position(self) -> np.ndarray:
        return self.state[:2]

    def predict(self, dt: float, accel_sigma: float = 1.5) -> None:
        F = np.eye(4)
        F[0, 2] = F[1, 3] = dt
        q = accel_sigma**2
        G = np.array([[dt**2 / 2, 0], [0, dt**2 / 2], [dt, 0], [0, dt]])
        self.state = F @ self.state
        self.covariance = F @ self.covariance @ F.T + G @ (np.eye(2) * q) @ G.T

    def update(self, measured: np.ndarray, sigma: float) -> None:
        H = np.zeros((2, 4))
        H[0, 0] = H[1, 1] = 1.0
        S = H @ self.covariance @ H.T + np.eye(2) * sigma**2
        K = self.covariance @ H.T @ np.linalg.inv(S)
        self.state = self.state + K @ (measured - self.state[:2])
        self.covariance = (np.eye(4) - K @ H) @ self.covariance
        self.hits += 1


class CooperativePerception:
    """Multi-source tracker in the shared map frame."""

    def __init__(self, association_gate: float = 3.0) -> None:
        self.gate = association_gate
        self.tracks: Dict[int, TrackedObject] = {}
        self._next_id = 0

    def step(self, dt: float,
             measurements: Sequence[Tuple[np.ndarray, float]]) -> None:
        """Advance all tracks and fuse ``(position, sigma)`` measurements."""
        for track in self.tracks.values():
            track.predict(dt)
        unmatched = []
        for measured, sigma in measurements:
            best = None
            best_d = self.gate
            for track in self.tracks.values():
                d = float(np.hypot(*(track.position - measured)))
                if d < best_d:
                    best, best_d = track, d
            if best is not None:
                best.update(np.asarray(measured, dtype=float), sigma)
            else:
                unmatched.append((measured, sigma))
        for measured, sigma in unmatched:
            track = TrackedObject(
                track_id=self._next_id,
                state=np.array([measured[0], measured[1], 0.0, 0.0]),
                covariance=np.diag([sigma**2, sigma**2, 4.0, 4.0]),
            )
            self.tracks[self._next_id] = track
            self._next_id += 1

    def confirmed_tracks(self, min_hits: int = 3) -> List[TrackedObject]:
        return [t for t in self.tracks.values() if t.hits >= min_hits]

    def position_errors(self, truth: Sequence[np.ndarray],
                        min_hits: int = 3) -> List[float]:
        """Per true object: error of the nearest confirmed track."""
        errors = []
        tracks = self.confirmed_tracks(min_hits)
        for true_pos in truth:
            if not tracks:
                break
            d = min(float(np.hypot(*(t.position - true_pos))) for t in tracks)
            errors.append(d)
        return errors
