"""LiDAR lane-marking localization (Ghallabi et al. [50]).

Pipeline, as in the paper: (1) segment road points out of the scan using
ring smoothness, (2) extract marking candidates by LiDAR intensity,
(3) fit marking lines with a Hough transform, (4) match the lines against
the HD map's boundary lines to correct the lateral/heading estimate inside
a particle filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import LaneBoundary
from repro.core.hdmap import HDMap
from repro.errors import LocalizationError
from repro.geometry.transform import SE2
from repro.localization.particle_filter import ParticleFilter2D
from repro.sensors.lidar import LidarScan

MARKING_INTENSITY_THRESHOLD = 0.52
EDGE_INTENSITY_BAND = (0.28, 0.50)


def extract_points_in_band(scan: LidarScan, lo: float,
                           hi: float) -> np.ndarray:
    """Body-frame ground points whose intensity falls in [lo, hi)."""
    ground = scan.ground
    mask = (ground.intensity >= lo) & (ground.intensity < hi)
    return ground.points[mask]


def extract_marking_points(scan: LidarScan,
                           threshold: float = MARKING_INTENSITY_THRESHOLD
                           ) -> np.ndarray:
    """Body-frame ground points whose intensity says 'paint'."""
    return extract_points_in_band(scan, threshold, 1.01)


def extract_edge_points(scan: LidarScan) -> np.ndarray:
    """Body-frame ground points in the curb/road-edge intensity band.

    Road edges are *unique* laterally (one per side), which is what breaks
    the one-lane-over aliasing that pure paint matching suffers from.
    """
    return extract_points_in_band(scan, *EDGE_INTENSITY_BAND)


@dataclass(frozen=True)
class HoughLine:
    """A line in normal form: x cos(a) + y sin(a) = rho (body frame)."""

    angle: float
    rho: float
    support: int

    def lateral_offset(self) -> float:
        """Signed lateral distance of the line from the vehicle.

        For near-longitudinal markings the normal is near-lateral, so
        ``rho``'s sign in the body frame is the signed offset (left > 0).
        """
        return self.rho if math.sin(self.angle) >= 0 else -self.rho

    def heading_in_body(self) -> float:
        """Direction of the line (perpendicular to its normal)."""
        return self.angle - math.pi / 2.0


def hough_lines(points: np.ndarray, n_angles: int = 90,
                rho_resolution: float = 0.15, max_rho: float = 15.0,
                min_support: int = 8, max_lines: int = 6) -> List[HoughLine]:
    """Classic Hough transform restricted to near-longitudinal lines.

    Markings the vehicle drives along appear as lines roughly parallel to
    the body x-axis, i.e. with normals near ±90°; the accumulator spans
    ±25° around that.
    """
    if points.shape[0] < min_support:
        return []
    angles = np.linspace(math.pi / 2 - math.radians(25),
                         math.pi / 2 + math.radians(25), n_angles)
    rhos = points @ np.stack([np.cos(angles), np.sin(angles)])  # (P, A)
    n_rho = int(2 * max_rho / rho_resolution) + 1
    rho_idx = np.round((rhos + max_rho) / rho_resolution).astype(int)
    valid = (rho_idx >= 0) & (rho_idx < n_rho)
    accumulator = np.zeros((n_angles, n_rho), dtype=int)
    for a in range(n_angles):
        v = valid[:, a]
        np.add.at(accumulator[a], rho_idx[v, a], 1)

    lines: List[HoughLine] = []
    acc = accumulator.copy()
    for _ in range(max_lines):
        peak = np.unravel_index(int(np.argmax(acc)), acc.shape)
        support = int(acc[peak])
        if support < min_support:
            break
        angle = float(angles[peak[0]])
        rho = float(peak[1] * rho_resolution - max_rho)
        lines.append(HoughLine(angle=angle, rho=rho, support=support))
        # Non-maximum suppression around the peak.
        a0 = max(0, peak[0] - 5)
        a1 = min(n_angles, peak[0] + 6)
        r0 = max(0, peak[1] - int(1.2 / rho_resolution))
        r1 = min(n_rho, peak[1] + int(1.2 / rho_resolution) + 1)
        acc[a0:a1, r0:r1] = 0
    return lines


def map_boundary_offsets(hdmap: HDMap, pose: SE2,
                         max_lateral: float = 15.0) -> List[float]:
    """Signed lateral offsets of nearby map boundary lines from ``pose``."""
    offsets = []
    point = np.array([pose.x, pose.y])
    for element in hdmap.elements_in_radius(pose.x, pose.y, max_lateral + 5.0,
                                            kind="boundary"):
        assert isinstance(element, LaneBoundary)
        s, d = element.line.project(point)
        if not 0.0 < s < element.line.length:
            continue
        heading = element.line.heading_at(s)
        rel = abs(math.remainder(heading - pose.theta, math.pi))
        if rel > math.radians(30):  # not parallel to travel
            continue
        # Signed offset in the body frame: positive left.
        mid = element.line.point_at(s)
        body = pose.inverse().apply(mid)
        if abs(body[1]) <= max_lateral:
            offsets.append(float(body[1]))
    return offsets


class LaneMarkingLocalizer:
    """PF localizer whose update aligns Hough marking lines with the map."""

    def __init__(self, hdmap: HDMap, rng: np.random.Generator,
                 n_particles: int = 250,
                 sigma_offset: float = 0.12) -> None:
        self.map = hdmap
        self.filter = ParticleFilter2D(n_particles, rng)
        self.sigma_offset = sigma_offset
        self._initialized = False
        self._boundary_cache: Optional[Tuple[Tuple[float, float], list]] = None

    def initialize(self, pose: SE2, sigma_xy: float = 2.0,
                   sigma_theta: float = 0.08) -> None:
        self.filter.init_gaussian(pose, sigma_xy, sigma_theta)
        self._initialized = True

    def predict(self, ds: float, dtheta: float) -> None:
        self._check()
        # Prediction noise must dominate any systematic odometry error
        # (wheel-scale bias), or the whole cloud drifts longitudinally
        # faster than absolute updates can re-weight it.
        self.filter.predict(ds, dtheta,
                            sigma_ds=0.05 + 0.08 * abs(ds),
                            sigma_dtheta=0.005 + 0.05 * abs(dtheta))

    def update_markings(self, scan: LidarScan) -> int:
        """Weight particles by marking-line/map-boundary agreement.

        Paint lines and road-edge lines are matched against their own map
        boundary classes; the edges, being laterally unique, anchor the
        estimate absolutely while the paint lines sharpen it. Returns the
        number of lines used.
        """
        self._check()
        paint_lines = hough_lines(extract_marking_points(scan))
        edge_lines = hough_lines(extract_edge_points(scan), min_support=6,
                                 max_lines=2)
        if not paint_lines and not edge_lines:
            return 0
        measurements = (
            [(line.lateral_offset(), "paint") for line in paint_lines]
            + [(line.lateral_offset(), "edge") for line in edge_lines]
        )
        boundaries = self._nearby_boundaries()

        def weight(states: np.ndarray) -> np.ndarray:
            n = states.shape[0]
            # A boundary group's signed lateral per particle does not depend
            # on the measurement, so compute it once per (class, group) over
            # the whole cloud instead of once per particle per measurement.
            laterals = {
                cls: [_batch_signed_laterals(states, a_pts, b_pts)
                      for a_pts, b_pts in boundaries.get(cls, ())]
                for cls in ("paint", "edge")
            }
            total = np.zeros(n)
            for m, cls in measurements:
                best = np.full(n, np.inf)
                for lat, valid in laterals[cls]:
                    err = np.where(valid, np.abs(lat - m), np.inf)
                    np.minimum(best, err, out=best)
                scale = 2.0 if cls == "edge" else 1.0
                term = scale * (np.minimum(best, 3.0 * self.sigma_offset)
                                / self.sigma_offset)**2
                total += np.where(np.isfinite(best), term, 0.0)
            log_w = -0.5 * total
            log_w -= log_w.max()
            return np.exp(log_w)

        self.filter.update(weight)
        self.filter.resample_if_needed()
        return len(measurements)

    def update_gnss(self, position: np.ndarray, sigma: float) -> None:
        self._check()

        def weight(states: np.ndarray) -> np.ndarray:
            d2 = ((states[:, 0] - position[0])**2
                  + (states[:, 1] - position[1])**2)
            return np.exp(-0.5 * d2 / sigma**2)

        self.filter.update(weight)
        self.filter.resample_if_needed()

    def estimate(self) -> SE2:
        self._check()
        return self.filter.estimate()

    # ------------------------------------------------------------------
    def _nearby_boundaries(self):
        from repro.core.elements import BoundaryType

        estimate = self.filter.estimate()
        key = (round(estimate.x / 20.0), round(estimate.y / 20.0))
        if self._boundary_cache is not None and self._boundary_cache[0] == key:
            return self._boundary_cache[1]
        segs = {"paint": [], "edge": []}
        for element in self.map.elements_in_radius(estimate.x, estimate.y,
                                                   30.0, kind="boundary"):
            assert isinstance(element, LaneBoundary)
            cls = ("edge" if element.boundary_type in (BoundaryType.ROAD_EDGE,
                                                       BoundaryType.CURB)
                   else "paint")
            pts = element.line.points
            centre = np.array([estimate.x, estimate.y])
            mid = (pts[:-1] + pts[1:]) / 2.0
            near = np.hypot(*(mid - centre).T) <= 30.0
            if near.any():
                segs[cls].append((pts[:-1][near], pts[1:][near]))
        self._boundary_cache = (key, segs)
        return segs

    def _check(self) -> None:
        if not self._initialized:
            raise LocalizationError("localizer not initialized")


def _signed_lateral(a: np.ndarray, b: np.ndarray, x: float, y: float,
                    theta: float) -> Optional[float]:
    """Signed body-frame lateral offset of the closest segment point."""
    p = np.array([x, y])
    d = b - a
    denom = np.einsum("ij,ij->i", d, d)
    t = np.clip(np.einsum("ij,ij->i", p - a, d)
                / np.maximum(denom, 1e-300), 0.0, 1.0)
    closest = a + t[:, None] * d
    dist2 = np.einsum("ij,ij->i", p - closest, p - closest)
    i = int(np.argmin(dist2))
    if dist2[i] > 20.0**2:
        return None
    rel = closest[i] - p
    # Body frame: lateral = -sin(theta)*dx + cos(theta)*dy.
    return float(-math.sin(theta) * rel[0] + math.cos(theta) * rel[1])


def _batch_signed_laterals(states: np.ndarray, a: np.ndarray,
                           b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_signed_lateral` over a whole particle cloud.

    Returns ``(lateral, valid)`` arrays of shape (N,); ``valid`` is False
    where the scalar function would have returned None (closest point
    farther than 20 m). Every operation is the elementwise twin of the
    scalar version in the same order, so results are bit-identical.
    """
    p = states[:, :2]  # (N, 2)
    theta = states[:, 2]
    d = b - a  # (S, 2)
    denom = np.einsum("ij,ij->i", d, d)
    rel = p[:, None, :] - a[None, :, :]  # (N, S, 2)
    t = np.clip(np.einsum("nsj,sj->ns", rel, d)
                / np.maximum(denom, 1e-300)[None, :], 0.0, 1.0)
    closest = a[None, :, :] + t[..., None] * d[None, :, :]
    diff = p[:, None, :] - closest
    dist2 = np.einsum("nsj,nsj->ns", diff, diff)
    i = np.argmin(dist2, axis=1)
    rows = np.arange(states.shape[0])
    valid = dist2[rows, i] <= 20.0**2
    rel_c = closest[rows, i] - p
    lateral = -np.sin(theta) * rel_c[:, 0] + np.cos(theta) * rel_c[:, 1]
    return lateral, valid
