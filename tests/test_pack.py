"""Tile pack store and binary delta sync: format, serving, cluster.

Covers the pack file round trip (publish atomicity, supersede,
compaction byte-identity, corruption → PackError), zero-copy serving
through MapService and the raw RPC frame, cluster pack-backed shards,
and SyncDelta ↔ wire round-trip properties.
"""

import pickle
import socket
import threading

import numpy as np
import pytest

from repro.core import HDMap, MapPatch, SignType, TrafficSign
from repro.core.changes import ChangeType, MapChange
from repro.core.ids import ElementId
from repro.core.tiles import TileId
from repro.errors import PackError, StorageError
from repro.obs.metrics import MetricsRegistry
from repro.pack import (
    PackReader,
    PackWriter,
    compact_pack,
    decode_delta,
    encode_delta,
)
from repro.pack.format import write_pack
from repro.serve.api import ChangesSince, GetTile, IngestPatch, Response, Status
from repro.serve.service import MapService
from repro.storage import TileStore, encode_map
from repro.storage.tilestore import StreamingMap
from repro.update.distribution import (
    MapDistributionServer,
    SyncDelta,
    VehicleMapClient,
)


@pytest.fixture(scope="module")
def city_store(city):
    return TileStore.build(city, tile_size=250.0)


@pytest.fixture
def pack_path(city_store, tmp_path):
    path = tmp_path / "city.pack"
    city_store.to_pack(str(path))
    return str(path)


class TestPackFormat:
    def test_roundtrip_byte_identical(self, city_store, pack_path):
        with PackReader(pack_path) as reader:
            assert reader.tiles() == city_store.tiles()
            for tile in city_store.tiles():
                assert bytes(reader.get(tile)) == city_store._blobs[tile]

    def test_get_is_zero_copy(self, city_store, pack_path):
        reader = PackReader(pack_path)
        view = reader.get(city_store.tiles()[0])
        assert isinstance(view, memoryview)
        assert view.obj is reader.buffer.obj  # a slice of the mmap itself

    def test_missing_tile_is_none(self, pack_path):
        with PackReader(pack_path) as reader:
            assert reader.get(TileId(999, 999)) is None
            assert reader.load(TileId(999, 999)) is None

    def test_lazy_decode(self, city_store, pack_path):
        reader = PackReader(pack_path)
        assert reader.decodes.value == 0
        shard = reader.load(city_store.tiles()[0])
        assert len(shard) > 0
        assert reader.decodes.value == 1

    def test_empty_payload_rejected(self, tmp_path):
        with PackWriter(str(tmp_path / "e.pack")) as writer:
            with pytest.raises(PackError):
                writer.add(TileId(0, 0), b"")

    def test_unpublished_adds_invisible(self, city_store, tmp_path):
        path = tmp_path / "u.pack"
        tiles = city_store.tiles()
        with PackWriter(str(path), tile_size=250.0) as writer:
            writer.add(tiles[0], city_store._blobs[tiles[0]])
            writer.publish()
            writer.add(tiles[1], city_store._blobs[tiles[1]])
            # no publish for the second tile
        with PackReader(str(path)) as reader:
            assert reader.tiles() == [tiles[0]]

    def test_reopen_appends_without_clobbering(self, city_store, tmp_path):
        path = str(tmp_path / "r.pack")
        tiles = city_store.tiles()
        write_pack(path, [(tiles[0], city_store._blobs[tiles[0]])],
                   tile_size=250.0)
        old_reader = PackReader(path)  # holds the first directory
        with PackWriter(path) as writer:
            writer.add(tiles[1], city_store._blobs[tiles[1]])
            writer.publish()
        # the old reader's view stays byte-identical after the append
        assert bytes(old_reader.get(tiles[0])) == city_store._blobs[tiles[0]]
        with PackReader(path) as reader:
            assert reader.tiles() == sorted(tiles[:2])
            for tile in tiles[:2]:
                assert bytes(reader.get(tile)) == city_store._blobs[tile]

    def test_supersede_creates_garbage(self, city_store, tmp_path):
        path = str(tmp_path / "s.pack")
        tile = city_store.tiles()[0]
        blob = city_store._blobs[tile]
        write_pack(path, [(tile, blob)], tile_size=250.0)
        with PackWriter(path) as writer:
            writer.add(tile, blob, version=2)
            writer.publish()
        with PackReader(path) as reader:
            assert reader.entry(tile).version == 2
            assert reader.garbage_bytes >= len(blob)

    def test_garbage_ratio_warns_once_at_open(self, city_store, tmp_path):
        from repro.obs.log import EVENT_LOG

        path = str(tmp_path / "g.pack")
        tile = city_store.tiles()[0]
        blob = city_store._blobs[tile]
        write_pack(path, [(tile, blob)], tile_size=250.0)
        for version in (2, 3, 4):  # three superseded copies: mostly garbage
            with PackWriter(path) as writer:
                writer.add(tile, blob, version=version)
                writer.publish()

        def warnings():
            return [e for e in EVENT_LOG.events()
                    if e.get("event") == "pack_garbage_large"]

        EVENT_LOG.clear()
        with PackReader(path) as reader:
            assert reader.garbage_bytes >= 3 * len(blob)
            assert len(warnings()) == 1  # warned at open, not per access
            bytes(reader.get(tile))
            assert len(warnings()) == 1
            event = warnings()[0]
            assert event["garbage_bytes"] >= 3 * len(blob)
            assert event["ratio"] >= event["threshold"]

        EVENT_LOG.clear()
        with PackReader(path, garbage_warn_ratio=0):
            assert warnings() == []  # ratio 0 disables the check

        EVENT_LOG.clear()
        fresh = str(tmp_path / "fresh.pack")
        write_pack(fresh, [(tile, blob)], tile_size=250.0)
        with PackReader(fresh):
            assert warnings() == []  # garbage-free pack stays quiet

        with pytest.raises(PackError):
            PackReader(path, garbage_warn_ratio=-0.1)

    def test_compaction_byte_identity(self, city_store, pack_path, tmp_path):
        tile = city_store.tiles()[0]
        with PackWriter(pack_path) as writer:  # supersede one tile
            writer.add(tile, city_store._blobs[tile], version=3)
            writer.publish()
        dst = str(tmp_path / "compacted.pack")
        with PackReader(pack_path) as before:
            reclaimed = compact_pack(pack_path, dst)
            assert reclaimed > 0
            with PackReader(dst, verify=True) as after:
                assert after.garbage_bytes == 0
                assert after.tiles() == before.tiles()
                for t in before.tiles():
                    assert bytes(after.get(t)) == bytes(before.get(t))
                    assert after.entry(t).version == before.entry(t).version

    def test_compact_same_path_rejected(self, pack_path):
        with pytest.raises(PackError):
            compact_pack(pack_path, pack_path)

    def test_checksum_corruption_detected(self, city_store, pack_path):
        with PackReader(pack_path) as reader:
            entry = reader.entry(city_store.tiles()[0])
        with open(pack_path, "r+b") as fh:  # flip one payload byte
            fh.seek(entry.offset + entry.length // 2)
            byte = fh.read(1)
            fh.seek(entry.offset + entry.length // 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(PackError, match="checksum"):
            PackReader(pack_path, verify=True)
        reader = PackReader(pack_path)  # lazy open still fine ...
        with pytest.raises(PackError):   # ... until the tile is verified
            reader.verify(entry.tile)
        assert reader.checksum_failures.value == 1

    def test_truncation_raises_pack_error(self, pack_path, tmp_path):
        data = open(pack_path, "rb").read()
        clipped = tmp_path / "clipped.pack"
        # clip at the header, inside the payload region, and inside the
        # directory — every section boundary must fail cleanly.
        for cut in (0, 10, 63, 64, len(data) // 2, len(data) - 7):
            clipped.write_bytes(data[:cut])
            with pytest.raises(PackError):
                PackReader(str(clipped))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pack"
        path.write_bytes(b"NOPE" + b"\x00" * 96)
        with pytest.raises(PackError, match="magic"):
            PackReader(str(path))

    def test_directory_crc_guard(self, pack_path):
        with PackReader(pack_path) as reader:
            dir_off = reader._dir_off
        with open(pack_path, "r+b") as fh:
            fh.seek(dir_off + 3)
            byte = fh.read(1)
            fh.seek(dir_off + 3)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(PackError, match="directory"):
            PackReader(pack_path)

    def test_element_accounting(self, city_store, pack_path):
        with PackReader(pack_path) as reader:
            total = sum(len(city_store.load_tile(t))
                        for t in city_store.tiles())
            assert reader.total_elements == total

    def test_metrics_registration(self, pack_path):
        registry = MetricsRegistry()
        with PackReader(pack_path) as reader:
            reader.get(reader.tiles()[0])
            reader.register_into(registry)
            snap = registry.snapshot()
        assert snap["pack.reads"] == 1
        assert snap["pack.tiles"] == len(reader)
        assert snap["pack.garbage_bytes"] == 0
        assert snap["pack.elements"] == reader.total_elements


class TestTileStorePackMode:
    def test_parity_with_dict_store(self, city_store, pack_path):
        packed = TileStore.from_pack(pack_path)
        assert packed.pack_backed
        assert packed.scheme.tile_size == city_store.scheme.tile_size
        assert packed.tiles() == city_store.tiles()
        assert packed.total_bytes() == city_store.total_bytes()
        assert packed.largest_tile() == city_store.largest_tile()
        for tile in city_store.tiles():
            assert packed.blob_bytes(tile) == city_store.blob_bytes(tile)
            a = city_store.load_tile(tile)
            b = packed.load_tile(tile)
            assert sorted(e.id for e in a.elements()) \
                == sorted(e.id for e in b.elements())

    def test_encoded_view_only_when_packed(self, city_store, pack_path):
        packed = TileStore.from_pack(pack_path)
        tile = city_store.tiles()[0]
        assert bytes(packed.encoded_view(tile)) == city_store._blobs[tile]
        assert city_store.encoded_view(tile) is None

    def test_visible_subset(self, city_store, pack_path):
        subset = city_store.tiles()[:2]
        packed = TileStore.from_pack(pack_path, tiles=subset)
        assert packed.tiles() == subset
        hidden = city_store.tiles()[-1]
        assert packed.load_tile(hidden) is None
        assert packed.encoded_view(hidden) is None
        assert packed.blob_bytes(hidden) == 0

    def test_streaming_map_over_pack(self, pack_path):
        packed = TileStore.from_pack(pack_path)
        streaming = StreamingMap(packed, max_tiles=3)
        found = streaming.elements_in_radius(200.0, 200.0, 150.0)
        assert found
        assert streaming.resident_bytes() > 0

    def test_no_tile_size_anywhere_rejected(self, city_store, tmp_path):
        path = str(tmp_path / "n.pack")
        tile = city_store.tiles()[0]
        write_pack(path, [(tile, city_store._blobs[tile])])  # tile_size 0
        with pytest.raises(StorageError):
            TileStore.from_pack(path)
        assert TileStore.from_pack(path, tile_size=250.0).tiles() == [tile]


class TestPackServing:
    def test_encoded_gettile_is_mmap_slice(self, city, city_store,
                                           pack_path):
        packed = TileStore.from_pack(pack_path)
        server = MapDistributionServer(city.copy())
        with MapService(server, packed, n_workers=2) as service:
            tile = city_store.tiles()[0]
            response = service.request(GetTile(tile=tile, encoded=True))
            assert response.ok and response.staleness == 0
            assert isinstance(response.payload, memoryview)
            assert response.payload.obj is packed.pack_reader.buffer.obj
            assert bytes(response.payload) == city_store._blobs[tile]
            missing = service.request(GetTile(tile=TileId(99, 99),
                                              encoded=True))
            assert missing.ok and missing.payload is None

    def test_decoded_gettile_still_served(self, city, pack_path):
        packed = TileStore.from_pack(pack_path)
        server = MapDistributionServer(city.copy())
        with MapService(server, packed, n_workers=1) as service:
            response = service.request(GetTile(tile=packed.tiles()[0]))
            assert response.ok and len(response.payload) > 0

    def test_encoded_changes_since(self, city, pack_path):
        packed = TileStore.from_pack(pack_path)
        working = city.copy()
        server = MapDistributionServer(working)
        with MapService(server, packed, n_workers=1) as service:
            patch = MapPatch(source="probe", confidence=0.9)
            patch.add(TrafficSign(id=working.new_id("pk-sign"),
                                  position=np.array([5.0, 5.0]),
                                  sign_type=SignType.STOP))
            assert service.request(IngestPatch(patch=patch)).ok
            response = service.request(ChangesSince(since_version=0,
                                                    encoded=True))
            assert response.ok and isinstance(response.payload, bytes)
            delta = decode_delta(response.payload)
            assert delta.version == response.version
            assert len(delta.changes) == 1
            plain = service.request(ChangesSince(since_version=0))
            assert isinstance(plain.payload, SyncDelta)
            assert len(response.payload) < \
                len(pickle.dumps(plain.payload,
                                 protocol=pickle.HIGHEST_PROTOCOL))


class TestRawRpcFrames:
    def _serve(self, dispatch):
        ours, theirs = socket.socketpair()
        from repro.cluster.rpc import RpcConnection, serve_connection

        thread = threading.Thread(target=serve_connection,
                                  args=(theirs, dispatch), daemon=True)
        thread.start()
        return RpcConnection(ours)

    def test_raw_response_roundtrip(self, city_store, pack_path):
        reader = PackReader(pack_path)
        tile = city_store.tiles()[0]
        view = reader.get(tile)

        def dispatch(op, payload):
            return Response(Status.OK, payload=view, version=7,
                            latency_s=0.125, staleness=2)

        conn = self._serve(dispatch)
        response = conn.call("tile")
        assert isinstance(response, Response)
        assert bytes(response.payload) == bytes(view)
        assert (response.version, response.staleness) == (7, 2)
        assert response.latency_s == pytest.approx(0.125)
        conn.call("shutdown")
        conn.close()

    def test_pickle_frames_unchanged(self):
        def dispatch(op, payload):
            if op == "echo":
                return {"payload": payload}
            raise ValueError("kaboom")

        conn = self._serve(dispatch)
        assert conn.call("echo", [1, 2]) == {"payload": [1, 2]}
        from repro.cluster.rpc import RpcError

        with pytest.raises(RpcError, match="kaboom"):
            conn.call("other")
        conn.call("shutdown")
        conn.close()

    def test_error_response_not_raw(self):
        # an ERROR Response has no bytes payload: it must travel pickled
        def dispatch(op, payload):
            return Response(Status.ERROR, error="nope")

        conn = self._serve(dispatch)
        response = conn.call("any")
        assert response.status is Status.ERROR and response.error == "nope"
        conn.call("shutdown")
        conn.close()


class TestClusterPack:
    def test_pack_backed_cluster_parity(self, city, city_store, tmp_path):
        from repro.cluster.router import ClusterRouter

        pack = str(tmp_path / "cluster.pack")
        with ClusterRouter(city, n_shards=2, tile_size=250.0,
                           transport="local", pack_path=pack) as router:
            for tile in city_store.tiles():
                response = router.request(GetTile(tile=tile, encoded=True))
                assert response.ok
                assert bytes(response.payload) == city_store._blobs[tile]

    def test_journal_gauge_and_warning(self, city, tmp_path):
        from repro.cluster.router import ClusterRouter
        from repro.obs.log import EVENT_LOG

        EVENT_LOG.clear()
        with ClusterRouter(city, n_shards=1, tile_size=250.0,
                           transport="local",
                           journal_warn_threshold=2) as router:
            working = city.copy()
            for i in range(3):
                patch = MapPatch(source=f"w{i}", confidence=0.9)
                patch.add(TrafficSign(
                    id=working.new_id(f"jr{i}-sign"),
                    position=np.array([12.0 + i, 8.0]),
                    sign_type=SignType.STOP))
                assert router.request(IngestPatch(patch=patch)).ok
            assert router.journal_gauge.value == 3
            warnings = [e for e in EVENT_LOG.events()
                        if e.get("event") == "journal_large"]
            assert len(warnings) == 1  # warned once, not per append
            registry = MetricsRegistry()
            router.register_into(registry)
            assert registry.snapshot()["cluster.journal.entries"] == 3


def _rng_delta(rng: np.random.Generator, n_changes: int,
               removals_only: bool = False) -> SyncDelta:
    shapes = [ChangeType.REMOVED] if removals_only else list(ChangeType)
    changes, elements = [], {}
    for i in range(n_changes):
        kind = ["lane", "marking", "sign"][int(rng.integers(3))]
        eid = ElementId(kind, int(rng.integers(1, 500)))
        ct = shapes[int(rng.integers(len(shapes)))]
        x, y = (round(float(v), 2)
                for v in rng.uniform(-5000, 5000, size=2))
        changes.append(MapChange(
            ct, eid, (x, y),
            magnitude=float(np.float32(rng.uniform(0, 3)))
            if ct is ChangeType.MOVED else 0.0,
            detail=f"probe-{i}"))
        if ct is ChangeType.REMOVED:
            elements[eid] = None
        else:
            elements[eid] = TrafficSign(
                id=ElementId("sign", eid.num),
                position=np.array([x, y]), sign_type=SignType.STOP)
    return SyncDelta(int(rng.integers(1, 10_000)), changes, elements)


class TestDeltaWire:
    def test_empty_delta(self):
        delta = SyncDelta(42, [], {})
        back = decode_delta(encode_delta(delta))
        assert back.version == 42
        assert back.changes == [] and back.elements == {}

    def test_removals_only(self, rng):
        delta = _rng_delta(rng, 8, removals_only=True)
        back = decode_delta(encode_delta(delta))
        assert back.version == delta.version
        assert all(v is None for v in back.elements.values())
        assert [c.element_id for c in back.changes] \
            == [c.element_id for c in delta.changes]

    def test_mixed_roundtrip_property(self, rng):
        for trial in range(10):
            delta = _rng_delta(rng, int(rng.integers(1, 30)))
            back = decode_delta(encode_delta(delta))
            assert back.version == delta.version
            assert len(back.changes) == len(delta.changes)
            for a, b in zip(delta.changes, back.changes):
                assert (a.change_type, a.element_id, a.detail) \
                    == (b.change_type, b.element_id, b.detail)
                assert a.position[0] == pytest.approx(b.position[0],
                                                      abs=0.011)
                assert a.position[1] == pytest.approx(b.position[1],
                                                      abs=0.011)
                if a.change_type is ChangeType.MOVED:
                    assert a.magnitude == pytest.approx(b.magnitude,
                                                        rel=1e-6)
            assert set(back.elements) == set(delta.elements)
            for eid, element in delta.elements.items():
                got = back.elements[eid]
                assert (got is None) == (element is None)
                if element is not None:
                    assert got.id == element.id

    def test_wire_much_smaller_than_pickle(self, rng):
        delta = _rng_delta(rng, 25)
        wire = encode_delta(delta)
        pickled = pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(wire) <= 0.25 * len(pickled)

    def test_truncation_every_boundary(self, rng):
        blob = encode_delta(_rng_delta(rng, 5))
        for cut in range(len(blob)):
            with pytest.raises(StorageError):
                decode_delta(blob[:cut])

    def test_bad_magic_and_version(self, rng):
        blob = encode_delta(SyncDelta(1, [], {}))
        with pytest.raises(StorageError, match="magic"):
            decode_delta(b"XXXX" + blob[4:])
        with pytest.raises(StorageError, match="version"):
            decode_delta(blob[:4] + b"\x63" + blob[5:])

    def test_corrupt_body(self, rng):
        blob = bytearray(encode_delta(_rng_delta(rng, 5)))
        blob[12] ^= 0xFF  # inside the zlib payload
        with pytest.raises(StorageError):
            decode_delta(bytes(blob))


class TestVehicleClientWire:
    def test_wire_sync_applies_and_counts_real_bytes(self, city):
        working = city.copy()
        server = MapDistributionServer(working)
        plain = VehicleMapClient(server)
        wired = VehicleMapClient(server, wire=True)
        plain.bytes_downloaded = wired.bytes_downloaded = 0
        patch = MapPatch(source="probe", confidence=0.9)
        patch.add(TrafficSign(id=working.new_id("wr-sign"),
                              position=np.array([6.0, 6.0]),
                              sign_type=SignType.STOP))
        server.ingest(patch)
        assert plain.sync() == 1 and wired.sync() == 1
        assert wired.is_consistent() and plain.is_consistent()
        assert 0 < wired.bytes_downloaded < 1000
