"""Multi-ring LiDAR model with ground-intensity and object returns.

Two return channels reproduce what the surveyed LiDAR pipelines consume:

- **ground returns** — rings of ground hits at fixed radii (the geometry of
  a multi-layer scanner's downward beams). Each hit carries an intensity:
  high on retro-reflective paint (lane markings, Ghallabi et al. [50]),
  medium on curbs/road edges (Zhao et al. [32]), low on asphalt, with
  nothing but clutter off the road.
- **object returns** — a horizontal sweep ray-cast against vertical
  landmarks (signs, lights, poles — the HRLs of [53]) and any dynamic
  obstacles supplied by the caller (for the perception experiments [6]).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import BoundaryType, LaneBoundary, PointLandmark
from repro.core.hdmap import HDMap
from repro.geometry.transform import SE2
from repro.perf.instrument import timed

ASPHALT_INTENSITY = 0.18
OFFROAD_INTENSITY = 0.08
PAINT_HALF_WIDTH = 0.15  # painted line half width, metres
CURB_HALF_WIDTH = 0.25
LANDMARK_RADIUS = 0.25  # landmark cylinder radius for ray casting

#: Cap on the (points x segments) temporary one distance chunk allocates;
#: see :func:`_points_to_segments_min_distance`.
DISTANCE_MAX_PAIRS = 2_000_000


@dataclass(frozen=True)
class Obstacle:
    """A dynamic object (vehicle, pedestrian) visible to the LiDAR."""

    position: np.ndarray
    radius: float = 1.0
    reflectivity: float = 0.4
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(2))
    kind: str = "vehicle"
    on_road: bool = True


@dataclass(frozen=True)
class GroundReturns:
    """Ground-channel hits, sensor frame."""

    points: np.ndarray  # (N, 2) sensor-frame coordinates
    intensity: np.ndarray  # (N,)
    ring: np.ndarray  # (N,) ring index


@dataclass(frozen=True)
class ObjectReturns:
    """Object-channel hits: polar in the sensor frame."""

    angles: np.ndarray  # (M,)
    ranges: np.ndarray  # (M,)
    intensity: np.ndarray  # (M,)

    def points(self) -> np.ndarray:
        return np.stack([
            self.ranges * np.cos(self.angles),
            self.ranges * np.sin(self.angles),
        ], axis=1)


@dataclass(frozen=True)
class LidarScan:
    t: float
    ground: GroundReturns
    objects: ObjectReturns
    max_range: float


class _GroundContext:
    """Cropped scan-range geometry, cached per map state and pose cell.

    Building this is the expensive part of a ground scan (index query plus
    per-polyline segment crop); consecutive scans from nearly the same pose
    — the sensor-rate access pattern every surveyed localizer produces —
    reuse one context until the vehicle leaves the pose cell or the map
    changes underneath it (version or structural mutation count).
    """

    __slots__ = ("map_ref", "map_version", "map_mutations", "cell",
                 "paint_a", "paint_b", "paint_refl", "paint_half",
                 "lane_a", "lane_b")

    def __init__(self, hdmap: HDMap, cell: Tuple[int, int],
                 paint_segments: List[Tuple[np.ndarray, np.ndarray, float, float]],
                 lane_lines: List[Tuple[np.ndarray, np.ndarray]]) -> None:
        self.map_ref = weakref.ref(hdmap)
        self.map_version = hdmap.version
        self.map_mutations = hdmap.mutation_count
        self.cell = cell
        # Stack every group into flat per-segment arrays once at build time:
        # the scan kernels then run one batched pass over all segments.
        # (Per-group max/any reductions and per-segment ones are exactly
        # equal — all segments in a group share refl/half.)
        if paint_segments:
            self.paint_a = np.concatenate([g[0] for g in paint_segments])
            self.paint_b = np.concatenate([g[1] for g in paint_segments])
            self.paint_refl = np.concatenate(
                [np.full(g[0].shape[0], g[2]) for g in paint_segments])
            self.paint_half = np.concatenate(
                [np.full(g[0].shape[0], g[3]) for g in paint_segments])
        else:
            self.paint_a = np.zeros((0, 2))
            self.paint_b = np.zeros((0, 2))
            self.paint_refl = np.zeros(0)
            self.paint_half = np.zeros(0)
        if lane_lines:
            self.lane_a = np.concatenate([g[0] for g in lane_lines])
            self.lane_b = np.concatenate([g[1] for g in lane_lines])
        else:
            self.lane_a = np.zeros((0, 2))
            self.lane_b = np.zeros((0, 2))

    def valid_for(self, hdmap: HDMap, cell: Tuple[int, int]) -> bool:
        return (self.cell == cell
                and self.map_ref() is hdmap
                and self.map_version == hdmap.version
                and self.map_mutations == hdmap.mutation_count)


class LidarScanner:
    """Scans the ground-truth map from a vehicle pose."""

    def __init__(self, n_azimuth: int = 360,
                 ground_ring_radii: Sequence[float] = (4.0, 6.5, 9.0, 12.0, 16.0, 21.0),
                 max_range: float = 60.0,
                 range_sigma: float = 0.02,
                 intensity_sigma: float = 0.05,
                 dropout: float = 0.02,
                 context_cell_size: float = 8.0) -> None:
        self.n_azimuth = n_azimuth
        self.ground_ring_radii = tuple(ground_ring_radii)
        self.max_range = max_range
        self.range_sigma = range_sigma
        self.intensity_sigma = intensity_sigma
        self.dropout = dropout
        self.context_cell_size = context_cell_size
        self._ground_ctx: Optional[_GroundContext] = None

    # ------------------------------------------------------------------
    @timed("lidar.scan")
    def scan(self, hdmap: HDMap, pose: SE2, rng: np.random.Generator,
             t: float = 0.0,
             obstacles: Optional[Sequence[Obstacle]] = None) -> LidarScan:
        ground = self._scan_ground(hdmap, pose, rng)
        objects = self._scan_objects(hdmap, pose, rng, obstacles or ())
        return LidarScan(t=t, ground=ground, objects=objects,
                         max_range=self.max_range)

    # ------------------------------------------------------------------
    def _ground_context(self, hdmap: HDMap, pose: SE2) -> _GroundContext:
        """Cropped paint/lane segments covering every pose in the cell.

        The crop is taken around the *cell centre* with the cell's half
        diagonal added to the crop radius, so it is a superset of the
        per-pose crop for any pose inside the cell. Supersets do not change
        scan output: every extra segment lies farther from every scan point
        than the widest intensity threshold (2.2 m lane half-width versus a
        >= ~7 m crop margin beyond max ring reach), so its distances never
        cross a paint/curb/on-road boundary.
        """
        cell_size = self.context_cell_size
        cell = (int(np.floor(pose.x / cell_size)),
                int(np.floor(pose.y / cell_size)))
        ctx = self._ground_ctx
        if ctx is not None and ctx.valid_for(hdmap, cell):
            return ctx

        centre = np.array([(cell[0] + 0.5) * cell_size,
                           (cell[1] + 0.5) * cell_size])
        margin = cell_size * float(np.sqrt(2.0)) / 2.0
        max_r = max(self.ground_ring_radii) + 2.0
        crop_r = max_r + 5.0 + margin

        def _crop(pts: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
            a, b = pts[:-1], pts[1:]
            seg_mid = (a + b) / 2.0
            reach = np.hypot(*(b - a).T) / 2.0 + crop_r
            near = np.hypot(*(seg_mid - centre).T) <= reach
            if not near.any():
                return None
            return a[near], b[near]

        nearby = hdmap.elements_in_radius(float(centre[0]), float(centre[1]),
                                          crop_r)
        paint_segments: List[Tuple[np.ndarray, np.ndarray, float, float]] = []
        lane_lines: List[Tuple[np.ndarray, np.ndarray]] = []
        for element in nearby:
            if isinstance(element, LaneBoundary):
                half = (CURB_HALF_WIDTH
                        if element.boundary_type in (BoundaryType.CURB,
                                                     BoundaryType.ROAD_EDGE)
                        else PAINT_HALF_WIDTH)
                cropped = _crop(element.line.points)
                if cropped is not None:
                    paint_segments.append((cropped[0], cropped[1],
                                           element.reflectivity, half))
            elif element.id.kind == "lane":
                cropped = _crop(element.centerline.points)
                if cropped is not None:
                    lane_lines.append(cropped)
        ctx = _GroundContext(hdmap, cell, paint_segments, lane_lines)
        self._ground_ctx = ctx
        return ctx

    def _scan_ground(self, hdmap: HDMap, pose: SE2,
                     rng: np.random.Generator) -> GroundReturns:
        azimuths = np.linspace(-np.pi, np.pi, self.n_azimuth, endpoint=False)
        ctx = self._ground_context(hdmap, pose)

        # Draw every ring's samples first — in the exact per-ring order the
        # unfused implementation consumed the rng stream — then run the
        # paint/lane distance kernels once over all rings stacked. The
        # per-point arithmetic is row-independent, so fusing rings changes
        # nothing numerically while cutting kernel launches by the ring
        # count.
        all_local: List[np.ndarray] = []
        all_noise: List[np.ndarray] = []
        all_ring: List[np.ndarray] = []
        for ring_idx, radius in enumerate(self.ground_ring_radii):
            keep = rng.uniform(size=azimuths.size) >= self.dropout
            az = azimuths[keep]
            r = radius + rng.normal(0.0, self.range_sigma * 2.0, size=az.size)
            local = np.stack([r * np.cos(az), r * np.sin(az)], axis=1)
            noise = rng.normal(0.0, self.intensity_sigma, size=az.size)
            all_local.append(local)
            all_noise.append(noise)
            all_ring.append(np.full(local.shape[0], ring_idx, dtype=int))

        local = np.concatenate(all_local, axis=0)
        world = pose.apply(local)
        n_pts = world.shape[0]

        # Conservative per-scan segment prune. Every scan point lies within
        # r_max of the pose, so (triangle inequality) a segment whose
        # distance from the pose exceeds r_max + threshold cannot come
        # within threshold of any point; dropping it cannot change any
        # hit/on-road bit. The 1e-6 slack dwarfs the rounding error of the
        # two distance computations.
        r_max = (float(np.hypot(local[:, 0], local[:, 1]).max())
                 if n_pts else 0.0)
        pose_pt = np.array([[pose.x, pose.y]])

        # Distance to nearest painted line decides the intensity. One
        # batched pass over all cached paint segments: per-point best
        # reflectivity is an exact max, identical to the per-group chain.
        best_refl = np.full(n_pts, -1.0)
        if n_pts and ctx.paint_a.shape[0]:
            pose_d = _segment_distances_block(pose_pt, ctx.paint_a,
                                              ctx.paint_b)[0]
            near = pose_d <= r_max + ctx.paint_half + 1e-6
            if near.any():
                a, b = ctx.paint_a[near], ctx.paint_b[near]
                refl, half = ctx.paint_refl[near], ctx.paint_half[near]
                chunk = max(1, min(n_pts,
                                   DISTANCE_MAX_PAIRS // max(a.shape[0], 1)))
                for lo in range(0, n_pts, chunk):
                    d = _segment_distances_block(world[lo:lo + chunk], a, b)
                    hit = d <= half[None, :]
                    best_refl[lo:lo + chunk] = np.where(
                        hit, refl[None, :], -1.0).max(axis=1)

        on_road = np.zeros(n_pts, dtype=bool)
        if n_pts and ctx.lane_a.shape[0]:
            pose_d = _segment_distances_block(pose_pt, ctx.lane_a,
                                              ctx.lane_b)[0]
            near = pose_d <= r_max + 2.2 + 1e-6
            if near.any():
                a, b = ctx.lane_a[near], ctx.lane_b[near]
                chunk = max(1, min(n_pts,
                                   DISTANCE_MAX_PAIRS // max(a.shape[0], 1)))
                for lo in range(0, n_pts, chunk):
                    d = _segment_distances_block(world[lo:lo + chunk], a, b)
                    # within a lane half-width-ish
                    on_road[lo:lo + chunk] = (d <= 2.2).any(axis=1)

        intensity = np.where(
            best_refl >= 0.0, best_refl,
            np.where(on_road, ASPHALT_INTENSITY, OFFROAD_INTENSITY),
        )
        intensity = np.clip(intensity + np.concatenate(all_noise), 0.0, 1.0)
        return GroundReturns(
            points=local,
            intensity=intensity,
            ring=np.concatenate(all_ring),
        )

    # ------------------------------------------------------------------
    def _scan_objects(self, hdmap: HDMap, pose: SE2,
                      rng: np.random.Generator,
                      obstacles: Sequence[Obstacle]) -> ObjectReturns:
        landmarks = hdmap.landmarks_in_radius(pose.x, pose.y, self.max_range)
        # Cylinders: (centre, radius, reflectivity).
        cylinders = [
            (lm.position, LANDMARK_RADIUS, lm.reflectivity)
            for lm in landmarks
            if not _is_flat(lm)
        ]
        cylinders.extend(
            (ob.position, ob.radius, ob.reflectivity) for ob in obstacles
        )
        if not cylinders:
            empty = np.zeros(0)
            return ObjectReturns(empty, empty, empty)

        azimuths = np.linspace(-np.pi, np.pi, self.n_azimuth, endpoint=False)
        dirs = np.stack([np.cos(azimuths + pose.theta),
                         np.sin(azimuths + pose.theta)], axis=1)
        origin = np.array([pose.x, pose.y])

        best_range = np.full(azimuths.size, np.inf)
        best_refl = np.zeros(azimuths.size)
        for centre, radius, refl in cylinders:
            rel = np.asarray(centre, dtype=float) - origin
            # |o + t d - c|^2 = r^2  ->  t^2 - 2 t (d.rel) + |rel|^2 - r^2 = 0
            b = dirs @ rel
            c = float(rel @ rel) - radius * radius
            disc = b * b - c
            ok = disc >= 0.0
            t_hit = b - np.sqrt(np.where(ok, disc, 0.0))
            valid = ok & (t_hit > 0.1) & (t_hit < self.max_range)
            closer = valid & (t_hit < best_range)
            best_range = np.where(closer, t_hit, best_range)
            best_refl = np.where(closer, refl, best_refl)

        hit = np.isfinite(best_range)
        hit &= rng.uniform(size=hit.size) >= self.dropout
        angles = azimuths[hit]
        ranges = best_range[hit] + rng.normal(0.0, self.range_sigma,
                                              size=int(hit.sum()))
        intensity = np.clip(
            best_refl[hit] + rng.normal(0.0, self.intensity_sigma,
                                        size=int(hit.sum())), 0.0, 1.0)
        return ObjectReturns(angles=angles, ranges=ranges, intensity=intensity)


def _is_flat(landmark: PointLandmark) -> bool:
    """Road markings lie on the ground; they never produce object returns."""
    return landmark.height <= 0.05


def _segment_distances_block(points: np.ndarray, a: np.ndarray,
                             b: np.ndarray) -> np.ndarray:
    """Exact (P, S) point-to-segment distance matrix.

    x/y components stay as separate 2-D arrays (no (P, S, 2) temporaries);
    every elementwise operation mirrors the einsum formulation in the same
    order, so the distances are bit-identical to it.
    """
    ax, ay = a[:, 0], a[:, 1]
    dx = b[:, 0] - ax
    dy = b[:, 1] - ay
    denom = dx * dx + dy * dy  # (S,)
    px = points[:, 0, None]
    py = points[:, 1, None]
    relx = px - ax[None, :]
    rely = py - ay[None, :]
    t = np.clip((relx * dx[None, :] + rely * dy[None, :])
                / np.maximum(denom, 1e-300)[None, :], 0.0, 1.0)
    fx = px - (ax[None, :] + t * dx[None, :])
    fy = py - (ay[None, :] + t * dy[None, :])
    return np.sqrt(fx * fx + fy * fy)


def _points_to_segments_min_distance(points: np.ndarray, a: np.ndarray,
                                     b: np.ndarray,
                                     max_pairs: int = DISTANCE_MAX_PAIRS
                                     ) -> np.ndarray:
    """Min distance from each of P points to any of S segments, vectorized.

    ``points``: (P, 2); ``a``/``b``: (S, 2) segment endpoints. Returns (P,).
    With no segments every distance is ``inf``. The (P, S) computation is
    chunked over segments so peak memory stays below ``max_pairs`` pairs;
    taking the min of per-chunk minima is exact, so chunking never changes
    the result.
    """
    n_pts = points.shape[0]
    n_seg = a.shape[0]
    if n_seg == 0:
        return np.full(n_pts, np.inf)
    chunk = max(1, min(n_seg, max_pairs // max(n_pts, 1)))
    if chunk >= n_seg:
        return _segment_distances_block(points, a, b).min(axis=1)
    best = np.full(n_pts, np.inf)
    for lo in range(0, n_seg, chunk):
        hi = lo + chunk
        np.minimum(best,
                   _segment_distances_block(points, a[lo:hi],
                                            b[lo:hi]).min(axis=1),
                   out=best)
    return best
