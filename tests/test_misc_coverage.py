"""Coverage for utility paths not exercised elsewhere."""

import math

import numpy as np
import pytest

from repro.geometry.polyline import Polyline, straight
from repro.geometry.raster import GridSpec, RasterGrid
from repro.geometry.transform import SE2


class TestPolylineEdges:
    def test_concat_with_gap_keeps_both(self):
        a = straight([0, 0], [50, 0])
        b = straight([60, 0], [100, 0])
        joined = a.concat(b)
        assert joined.length == pytest.approx(100.0)  # includes the 10 m gap

    def test_repr_mentions_length(self):
        line = straight([0, 0], [123, 0])
        assert "123" in repr(line)

    def test_offset_negative_goes_right(self):
        line = straight([0, 0], [50, 0])
        right = line.offset(-2.0)
        assert np.allclose(right.points[:, 1], -2.0, atol=1e-9)


class TestRasterGridCopy:
    def test_copy_is_deep(self):
        grid = RasterGrid(GridSpec.from_bounds((0, 0, 10, 10), 1.0))
        grid.set_points(np.array([[5.0, 5.0]]), 3.0)
        clone = grid.copy()
        clone.data[:] = 0.0
        assert grid.sample(np.array([[5.0, 5.0]]))[0] == 3.0

    def test_occupied_nbytes_smaller_for_sparse(self):
        from repro.geometry.raster import BitmaskRaster

        spec = GridSpec.from_bounds((0, 0, 500, 500), 0.5)
        raster = BitmaskRaster(spec, ["a"])
        raster.mark_points("a", np.array([[5.0, 5.0]]))
        assert raster.occupied_nbytes() < raster.nbytes() / 10


class TestChangeLog:
    def test_log_orders_and_filters(self):
        from repro.core import ChangeLog, ChangeType, ElementId, MapChange

        log = ChangeLog()
        for version in (1, 2, 3):
            log.record(version, MapChange(ChangeType.ADDED,
                                          ElementId("sign", version),
                                          (0.0, 0.0)))
        assert len(log) == 3
        assert len(log.changes_since(1)) == 2


class TestParticleFilterUniformInit:
    def test_uniform_covers_bounds(self, rng):
        from repro.localization import ParticleFilter2D

        pf = ParticleFilter2D(500, rng)
        pf.init_uniform((0.0, 0.0, 100.0, 50.0))
        assert pf.states[:, 0].min() >= 0.0
        assert pf.states[:, 0].max() <= 100.0
        assert pf.states[:, 1].max() <= 50.0


class TestCameraFov:
    def test_in_view_respects_fov(self):
        from repro.sensors import Camera

        camera = Camera(fov=math.radians(90.0), max_range=50.0)
        pose = SE2(0.0, 0.0, 0.0)
        assert camera.in_view(pose, np.array([20.0, 0.0]))
        assert camera.in_view(pose, np.array([20.0, 15.0]))
        assert not camera.in_view(pose, np.array([-20.0, 0.0]))  # behind
        assert not camera.in_view(pose, np.array([60.0, 0.0]))  # too far
        assert not camera.in_view(pose, np.array([0.2, 0.0]))  # too close


class TestLaneMarkingHelpers:
    def test_map_boundary_offsets_signs(self, highway):
        from repro.localization.lane_marking import map_boundary_offsets

        lane = next(iter(highway.lanes()))
        s = 200.0
        pose = SE2(*lane.centerline.point_at(s),
                   lane.centerline.heading_at(s))
        offsets = map_boundary_offsets(highway, pose)
        assert offsets
        # Driving in a lane: at least one boundary on each side.
        assert any(o > 0 for o in offsets)
        assert any(o < 0 for o in offsets)
        # Nearest boundaries are about half a lane width away.
        assert min(abs(o) for o in offsets) < 2.5

    def test_hough_requires_support(self, rng):
        from repro.localization.lane_marking import hough_lines

        sparse = rng.uniform(-5, 5, size=(4, 2))
        assert hough_lines(sparse, min_support=8) == []


class TestBehaviorIdm:
    def test_following_speed_decreases_with_gap(self, city):
        from repro.planning import BehaviorPlanner, LeadVehicle

        planner = BehaviorPlanner(city)
        lane = max(city.lanes(), key=lambda l: l.length)
        point = lane.centerline.point_at(lane.length / 2)
        pose = SE2(float(point[0]), float(point[1]),
                   lane.centerline.heading_at(lane.length / 2))
        near = planner.decide(pose, 12.0, t=100.0,
                              lead=LeadVehicle(gap=6.0, speed=5.0))
        far = planner.decide(pose, 12.0, t=100.0,
                             lead=LeadVehicle(gap=25.0, speed=5.0))
        assert near.target_speed <= far.target_speed


class TestImuDeadReckon:
    def test_track_is_time_ordered(self, highway, rng):
        from repro.sensors import ImuSensor
        from repro.sensors.imu import dead_reckon
        from repro.world import drive_route

        lane = next(iter(highway.lanes()))
        traj = drive_route(highway, lane.id, 300.0, rng)
        readings = ImuSensor().measure(traj, rng)
        track = dead_reckon(readings, traj.pose_at(readings[0].t), 25.0)
        times = [t for t, _ in track]
        assert times == sorted(times)
        assert len(track) == len(readings)


class TestStorageStatsProperties:
    def test_report_properties_consistent(self, highway, rng):
        from repro.storage import storage_report

        report = storage_report(highway, rng)
        assert report.pointcloud_per_mile == pytest.approx(
            report.pointcloud_bytes / report.road_miles)
        assert report.reduction_factor == pytest.approx(
            report.pointcloud_bytes / report.binary_simplified_bytes)
