"""S2 — Streaming fleet-to-map ingestion: the maintenance loop closed at
fleet scale (the survey's crowd-sourced maintenance pipelines [41][42][43]
run as one concurrent system).

N producer vehicles stream detection/miss evidence into the tile-
partitioned observation bus; M supervised stage workers fuse, classify,
and publish patches into the same versioned database the serving layer
reads. Shape assertions: worker pools must out-drain a single worker
under the same (I/O-modelled) per-batch cost, every injected ground-truth
change must be served within a bounded number of map versions, and the
at-least-once uplink must never produce a duplicate applied patch.
"""

import time

import numpy as np
from conftest import once

from repro.core.changes import ChangeType
from repro.eval import ResultTable
from repro.ingest import FleetObservationSource, IngestPipeline
from repro.update.distribution import MapDistributionServer
from repro.world import generate_grid_city
from repro.world.scenario import ChangeSpec, apply_changes

#: Pinned world seed: a scenario whose fleet routes were validated to
#: cover every injected change (coverage is a property of the road graph,
#: not of the pipeline under test).
_SEED = 7


def _scenario():
    rng = np.random.default_rng(_SEED)
    city = generate_grid_city(rng, 3, 2, block_size=150.0)
    return apply_changes(city, ChangeSpec(remove_signs=2, add_signs=2), rng)


def _run_ingest(scenario, n_workers):
    server = MapDistributionServer(scenario.prior.copy())
    pipe = IngestPipeline(server, tile_size=250.0, n_workers=n_workers,
                          n_partitions=8, capacity_per_partition=8192,
                          max_batch=16, stage_latency_s=0.005)
    source = FleetObservationSource(
        scenario, n_vehicles=4, route_length_m=1200.0, step_s=0.5,
        routes_per_vehicle=3, duplicate_rate=0.15, seed=_SEED)
    # N producer threads fill the bus, then M workers drain it — the
    # timed section isolates consumption so throughput compares workers.
    report = source.run(pipe.submit)
    t0 = time.perf_counter()
    with pipe:
        drained = pipe.drain(60.0)
    elapsed = time.perf_counter() - t0
    assert drained
    return {
        "server": server,
        "pipe": pipe,
        "report": report,
        "throughput": report.published / max(elapsed, 1e-9),
    }


def _experiment(rng):
    scenario = _scenario()
    return scenario, {w: _run_ingest(scenario, w) for w in (1, 4)}


def test_s02_streaming_ingest(benchmark, rng):
    scenario, runs = once(benchmark, _experiment, rng)
    solo, pool = runs[1], runs[4]

    table = ResultTable("S2", "streaming fleet-to-map ingestion")
    table.add("4-worker vs 1-worker ingest throughput", ">= 1.3x",
              f"{pool['throughput'] / max(solo['throughput'], 1e-9):.2f}x "
              f"({solo['throughput']:.0f} -> {pool['throughput']:.0f} obs/s)",
              ok=pool["throughput"] >= 1.3 * solo["throughput"])

    changes = pool["server"].changes_since(0)
    removed = [c.element_id for c in changes
               if c.change_type is ChangeType.REMOVED]
    added = [c.position for c in changes
             if c.change_type is ChangeType.ADDED]
    served = 0
    for true_change in scenario.true_changes:
        if true_change.change_type is ChangeType.REMOVED:
            served += true_change.element_id in removed
        else:
            tx, ty = true_change.position
            served += any(np.hypot(tx - ax, ty - ay) <= 6.0
                          for ax, ay in added)
    n_true = len(scenario.true_changes)
    table.add("injected ground-truth changes served",
              f"{n_true}/{n_true}", f"{served}/{n_true}",
              ok=served == n_true)

    dup_removed = len(removed) - len(set(removed))
    dup_added = sum(1 for i, (ax, ay) in enumerate(added)
                    for bx, by in added[i + 1:]
                    if np.hypot(ax - bx, ay - by) <= 4.0)
    table.add("duplicate applied patches (at-least-once uplink)", "0",
              str(dup_removed + dup_added),
              ok=dup_removed + dup_added == 0)
    table.add("uplink duplicates collapsed by dedup key", "> 0",
              str(pool["report"].deduplicated),
              ok=pool["report"].deduplicated > 0)

    version_bound = 2 * n_true
    table.add("map versions to serve all changes", f"<= {version_bound}",
              str(pool["server"].version),
              ok=pool["server"].version <= version_bound)

    stats = pool["pipe"].stats()
    table.add("dead letters", "0", str(stats["batches"]["dead_letters"]),
              ok=stats["batches"]["dead_letters"] == 0)
    table.add("map freshness lag p95", "reported",
              f"{1e3 * stats['freshness']['p95_s']:.1f} ms")
    fuse_p95 = stats["stage_latency"]["fuse"]["p95_s"]
    table.add("fuse stage p95", "reported", f"{1e3 * fuse_p95:.2f} ms")
    table.print()
    assert table.all_ok()
