"""Pose estimation beyond planar localization.

- :mod:`repro.pose.pose6dof` — full 6-DoF pose recovery: a 4-DoF
  (translation + heading) estimate from any planar localizer is completed
  with roll/pitch solved from 3-D landmark observations, the HDMI-Loc [23]
  two-stage scheme.
- :mod:`repro.pose.association` — semantic max-mixture data association
  over a sliding window (Stannartz et al. [58]).
"""

from repro.pose.pose6dof import SixDofEstimator, recover_roll_pitch
from repro.pose.association import (
    AssociationResult,
    MaxMixtureAssociator,
    WindowedPoseEstimator,
)

__all__ = [
    "AssociationResult",
    "MaxMixtureAssociator",
    "SixDofEstimator",
    "WindowedPoseEstimator",
    "recover_roll_pitch",
]
