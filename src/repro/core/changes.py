"""Map change records and map diffing.

HD maps change at a far higher rate than traditional maps (Section II-B of
the survey), so changes are first-class: every maintenance pipeline in
:mod:`repro.update` emits :class:`MapChange` records, and two maps can be
diffed into a change set for evaluation (ground-truth change vs detected
change — the sensitivity/specificity measurements of Pannen et al. [44]
and the change-accuracy measurement of SLAMCU [41]).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import Lane, LaneBoundary, MapElement, PointLandmark
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId


class ChangeType(enum.Enum):
    ADDED = "added"
    REMOVED = "removed"
    MOVED = "moved"
    MODIFIED = "modified"


@dataclass(frozen=True)
class MapChange:
    """One atomic change to one element.

    ``position`` locates the change for spatial bucketing; ``magnitude`` is
    the displacement in metres for MOVED changes (0 otherwise).
    """

    change_type: ChangeType
    element_id: ElementId
    position: Tuple[float, float]
    magnitude: float = 0.0
    detail: str = ""

    def distance_to(self, other: "MapChange") -> float:
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        return float(np.hypot(dx, dy))


@dataclass
class ChangeLog:
    """An append-only log of changes with the map version they produced."""

    entries: List[Tuple[int, MapChange]] = field(default_factory=list)

    def record(self, version: int, change: MapChange) -> None:
        self.entries.append((version, change))

    def changes_since(self, version: int) -> List[MapChange]:
        return [change for v, change in self.entries if v > version]

    def __len__(self) -> int:
        return len(self.entries)


def _element_position(element: MapElement) -> Tuple[float, float]:
    if isinstance(element, PointLandmark):
        return float(element.position[0]), float(element.position[1])
    min_x, min_y, max_x, max_y = element.bounds()
    return ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)


def _elements_differ(old: MapElement, new: MapElement,
                     move_tolerance: float) -> Optional[MapChange]:
    """Change record if two same-id elements differ, else None."""
    pos_old = np.array(_element_position(old))
    pos_new = np.array(_element_position(new))
    moved = float(np.hypot(*(pos_new - pos_old)))
    if moved > move_tolerance:
        return MapChange(
            change_type=ChangeType.MOVED,
            element_id=new.id,
            position=(float(pos_new[0]), float(pos_new[1])),
            magnitude=moved,
        )
    if isinstance(old, Lane) and isinstance(new, Lane):
        if (abs(old.width - new.width) > 1e-6
                or abs(old.speed_limit - new.speed_limit) > 1e-6
                or old.lane_type is not new.lane_type):
            return MapChange(
                change_type=ChangeType.MODIFIED,
                element_id=new.id,
                position=(float(pos_new[0]), float(pos_new[1])),
                detail="lane attributes",
            )
        geo = old.centerline.points
        geo_new = new.centerline.points
        if geo.shape != geo_new.shape or not np.allclose(geo, geo_new, atol=move_tolerance):
            return MapChange(
                change_type=ChangeType.MODIFIED,
                element_id=new.id,
                position=(float(pos_new[0]), float(pos_new[1])),
                detail="lane geometry",
            )
    if isinstance(old, LaneBoundary) and isinstance(new, LaneBoundary):
        if old.boundary_type is not new.boundary_type:
            return MapChange(
                change_type=ChangeType.MODIFIED,
                element_id=new.id,
                position=(float(pos_new[0]), float(pos_new[1])),
                detail="boundary type",
            )
    return None


def diff_maps(old: HDMap, new: HDMap, move_tolerance: float = 0.1) -> List[MapChange]:
    """Structural diff of two maps sharing an id space.

    Elements present only in ``new`` are ADDED, only in ``old`` are
    REMOVED; same-id elements whose reference position moved more than
    ``move_tolerance`` metres are MOVED, and other content differences are
    MODIFIED.
    """
    changes: List[MapChange] = []
    old_ids = {e.id: e for e in old.elements()}
    new_ids = {e.id: e for e in new.elements()}
    for eid, element in new_ids.items():
        if eid not in old_ids:
            changes.append(
                MapChange(ChangeType.ADDED, eid, _element_position(element))
            )
    for eid, element in old_ids.items():
        if eid not in new_ids:
            changes.append(
                MapChange(ChangeType.REMOVED, eid, _element_position(element))
            )
    for eid, element in new_ids.items():
        old_element = old_ids.get(eid)
        if old_element is None:
            continue
        change = _elements_differ(old_element, element, move_tolerance)
        if change is not None:
            changes.append(change)
    return changes


def match_changes(detected: Sequence[MapChange], truth: Sequence[MapChange],
                  radius: float = 5.0) -> Dict[str, int]:
    """Greedy spatial matching of detected vs ground-truth changes.

    Returns counts ``{"tp": ..., "fp": ..., "fn": ...}``: a detected change
    matches a true change when within ``radius`` metres and of the same
    type.
    """
    unmatched_truth = list(truth)
    tp = 0
    fp = 0
    for det in detected:
        best_i = -1
        best_d = radius
        for i, tr in enumerate(unmatched_truth):
            if tr.change_type is not det.change_type:
                continue
            d = det.distance_to(tr)
            if d <= best_d:
                best_i, best_d = i, d
        if best_i >= 0:
            unmatched_truth.pop(best_i)
            tp += 1
        else:
            fp += 1
    return {"tp": tp, "fp": fp, "fn": len(unmatched_truth)}
