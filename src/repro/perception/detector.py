"""Base LiDAR object detector.

Clusters the object-channel returns of a scan into detections with a
confidence score. Deliberately imperfect: sparse clusters score low, and
map furniture (poles, signs) produces candidate clusters a plain detector
cannot tell from genuine obstacles — the confusion HDNET's map prior
removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.transform import SE2
from repro.sensors.lidar import LidarScan


@dataclass
class Detection:
    """One detected object in world coordinates."""

    position: np.ndarray
    score: float
    n_points: int
    true_object: bool = False  # eval bookkeeping, set by the harness


class LidarObjectDetector:
    """Angular clustering detector over object-channel returns."""

    def __init__(self, cluster_angle: float = np.radians(4.0),
                 cluster_range: float = 2.0,
                 min_points: int = 2,
                 score_saturation: int = 8) -> None:
        self.cluster_angle = cluster_angle
        self.cluster_range = cluster_range
        self.min_points = min_points
        self.score_saturation = score_saturation

    def detect(self, scan: LidarScan, pose: SE2) -> List[Detection]:
        obj = scan.objects
        if obj.angles.size == 0:
            return []
        order = np.argsort(obj.angles)
        angles = obj.angles[order]
        ranges = obj.ranges[order]
        clusters: List[List[int]] = [[0]]
        for i in range(1, angles.size):
            prev = clusters[-1][-1]
            if (angles[i] - angles[prev] <= self.cluster_angle
                    and abs(ranges[i] - ranges[prev]) <= self.cluster_range):
                clusters[-1].append(i)
            else:
                clusters.append([i])
        detections: List[Detection] = []
        for members in clusters:
            if len(members) < self.min_points:
                continue
            r = float(np.mean(ranges[members]))
            a = float(np.mean(angles[members]))
            body = np.array([r * np.cos(a), r * np.sin(a)])
            world = pose.apply(body)
            score = min(1.0, len(members) / self.score_saturation)
            detections.append(Detection(position=world, score=score,
                                        n_points=len(members)))
        return detections
