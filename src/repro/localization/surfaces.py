"""Lane-surface particle localization (Bauer et al. [48]).

The road is divided into lane surfaces; every particle lives *on* a lane
surface, and a particle that drifts off its surface is re-localized onto
the neighbouring lane instead of wandering off-road. This bakes the map's
strongest prior — vehicles are on lanes — into the filter itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.elements import Lane
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.errors import LocalizationError
from repro.geometry.transform import SE2
from repro.localization.particle_filter import ParticleFilter2D


class LaneSurfaceFilter:
    """A PF whose particles are snapped to lane surfaces after prediction."""

    def __init__(self, hdmap: HDMap, rng: np.random.Generator,
                 n_particles: int = 250) -> None:
        self.map = hdmap
        self.filter = ParticleFilter2D(n_particles, rng)
        self.rng = rng
        self._initialized = False
        # Which lane each particle currently rides.
        self._lane_ids: List[Optional[ElementId]] = [None] * n_particles

    def initialize(self, pose: SE2, sigma_xy: float = 3.0,
                   sigma_theta: float = 0.1) -> None:
        self.filter.init_gaussian(pose, sigma_xy, sigma_theta)
        self._assign_surfaces()
        self._initialized = True

    def predict(self, ds: float, dtheta: float) -> None:
        self._check()
        self.filter.predict(ds, dtheta,
                            sigma_ds=0.05 + 0.05 * abs(ds),
                            sigma_dtheta=0.01 + 0.1 * abs(dtheta))
        self._constrain_to_surfaces()

    def update_gnss(self, position: np.ndarray, sigma: float) -> None:
        self._check()

        def weight(states: np.ndarray) -> np.ndarray:
            d2 = ((states[:, 0] - position[0])**2
                  + (states[:, 1] - position[1])**2)
            return np.exp(-0.5 * d2 / sigma**2)

        self.filter.update(weight)
        if self.filter.resample_if_needed():
            self._assign_surfaces()

    def update_lane_offset(self, offset: float, sigma: float = 0.15) -> None:
        """Camera lateral offset inside the current lane."""
        self._check()
        laterals = np.empty(self.filter.n)
        for i, state in enumerate(self.filter.states):
            lane = self._lane_of(i)
            if lane is None:
                laterals[i] = np.inf
                continue
            _, d = lane.centerline.project(state[:2])
            laterals[i] = d

        def weight(states: np.ndarray) -> np.ndarray:
            err = laterals - offset
            w = np.where(np.isfinite(err),
                         np.exp(-0.5 * (err / sigma)**2), 1e-9)
            return w

        self.filter.update(weight)
        if self.filter.resample_if_needed():
            self._assign_surfaces()

    def estimate(self) -> SE2:
        self._check()
        return self.filter.estimate()

    def lane_vote(self) -> Optional[ElementId]:
        """The lane carrying the most particle weight (lane-level output)."""
        votes: Dict[ElementId, float] = {}
        for i, lane_id in enumerate(self._lane_ids):
            if lane_id is not None:
                votes[lane_id] = votes.get(lane_id, 0.0) + self.filter.weights[i]
        if not votes:
            return None
        return max(votes.items(), key=lambda kv: kv[1])[0]

    # ------------------------------------------------------------------
    def _lane_of(self, i: int) -> Optional[Lane]:
        lane_id = self._lane_ids[i]
        if lane_id is None:
            return None
        lane = self.map.get(lane_id)
        return lane if isinstance(lane, Lane) else None

    def _assign_surfaces(self) -> None:
        for i, state in enumerate(self.filter.states):
            try:
                lane, d = self.map.nearest_lane(float(state[0]), float(state[1]))
            except Exception:
                self._lane_ids[i] = None
                continue
            self._lane_ids[i] = lane.id if d <= lane.width * 1.5 else None

    def _constrain_to_surfaces(self) -> None:
        """Snap drifted particles back onto a lane surface.

        A particle whose lateral exceeds its lane's half width is moved to
        the adjacent lane surface if one exists there, otherwise clamped to
        the lane edge (the "re-localized on a new surface" rule of [48]).
        """
        for i, state in enumerate(self.filter.states):
            lane = self._lane_of(i)
            if lane is None:
                self._reassign(i)
                continue
            s, d = lane.centerline.project(state[:2])
            half = lane.width / 2.0
            if abs(d) <= half:
                # Follow the lane onto its successor when running off the end.
                if s >= lane.centerline.length - 1e-6:
                    succs = self.map.successors(lane.id)
                    if succs:
                        self._lane_ids[i] = succs[
                            int(self.rng.integers(0, len(succs)))]
                continue
            neighbor_id = (self.map.left_neighbor(lane.id) if d > 0
                           else self.map.right_neighbor(lane.id))
            if neighbor_id is not None:
                self._lane_ids[i] = neighbor_id
                continue
            # Clamp back onto the surface edge.
            base = lane.centerline.point_at(s)
            normal = lane.centerline.normal_at(s)
            clamped = base + np.sign(d) * half * 0.95 * normal
            self.filter.states[i, 0] = clamped[0]
            self.filter.states[i, 1] = clamped[1]

    def _reassign(self, i: int) -> None:
        state = self.filter.states[i]
        try:
            lane, d = self.map.nearest_lane(float(state[0]), float(state[1]))
        except Exception:
            return
        if d <= lane.width * 2.0:
            self._lane_ids[i] = lane.id

    def _check(self) -> None:
        if not self._initialized:
            raise LocalizationError("filter not initialized")
