"""Shard process: a full MapService over one shard's tile subset.

A shard is an ordinary single-node serving stack —
:class:`~repro.update.distribution.MapDistributionServer` (authoritative
dynamic state) + :class:`~repro.storage.tilestore.TileStore` (static tile
blobs) + :class:`~repro.serve.service.MapService` (worker pool, cache,
admission) — scoped to the tiles rendezvous hashing assigned it. The
router hands each shard a fully picklable :class:`ShardConfig` at boot:

- ``base_map_bytes``: the encoded disjoint subset of the base map whose
  elements' centre tiles this shard owns (the authoritative dynamic
  partition — every element has exactly one home shard);
- ``blobs``: the shard's owned tiles' blobs, sliced from a *full-map*
  ``TileStore.build``, so border elements are replicated exactly as on a
  single node and ``GetTile`` payloads are byte-identical regardless of
  which shard serves them;
- ``replay``: the journal suffix of accepted sub-patches this shard must
  re-apply. Replay runs through the same ingest path (same conflict
  policy, same order), so a restarted shard reconstructs the exact
  dynamic state — versions, change log, and all — that the dead primary
  had acknowledged. That replay is the whole failover story: acked
  writes live in the router's journal, so no shard death can lose them.

The same backend runs in two transports: in-process (``LocalShard`` in
the router module — unit tests, doc tooling) and as a forked child
(:func:`shard_main`) speaking the length-prefixed RPC of
:mod:`repro.cluster.rpc` over a socketpair.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.tiles import TileId
from repro.core.versioning import MapPatch
from repro.obs.log import EVENT_LOG
from repro.serve.api import Request
from repro.serve.service import MapService
from repro.storage.binary import decode_map
from repro.storage.tilestore import TileStore
from repro.update.distribution import ConflictPolicy, MapDistributionServer


@dataclass
class ShardConfig:
    """Everything a shard process needs to boot, in picklable form."""

    index: int
    tile_size: float
    base_map_bytes: bytes
    blobs: Dict[TileId, bytes] = field(default_factory=dict)
    replay: List[MapPatch] = field(default_factory=list)
    n_workers: int = 2
    service_latency_s: float = 0.0
    storage_latency_s: float = 0.0
    stale_tile_versions: int = 0
    name: str = "shard"
    #: pack-backed mode: instead of shipping ``blobs`` through the fork,
    #: every shard mmaps the same shared pack file and sees only its
    #: ``owned_tiles`` subset — the config stays a few hundred bytes no
    #: matter how big the base map is.
    pack_path: Optional[str] = None
    owned_tiles: List[TileId] = field(default_factory=list)


class ShardBackend:
    """The shard-side dispatch table over a private serving stack."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        base = decode_map(config.base_map_bytes)
        self.server = MapDistributionServer(base)
        if config.pack_path is not None:
            store = TileStore.from_pack(config.pack_path, config.tile_size,
                                        tiles=config.owned_tiles)
        else:
            store = TileStore.from_blobs(config.blobs, config.tile_size)
        self.service = MapService(
            self.server, store,
            n_workers=config.n_workers,
            service_latency_s=config.service_latency_s,
            storage_latency_s=config.storage_latency_s,
            stale_tile_versions=config.stale_tile_versions)
        for patch in config.replay:
            # The journal stores *effective* patches — the ops the dead
            # primary actually applied after conflict resolution — so
            # replay applies them verbatim (LAST_WRITER_WINS never drops)
            # and reconstructs the exact acked state: one version per
            # entry, same elements, same change log shape.
            self.server.ingest(patch, policy=ConflictPolicy.LAST_WRITER_WINS)
        # Injected slowness (the cluster.slow_shard fault): the next
        # ``count`` dispatches sleep ``delay_s`` before answering.
        self._slow_lock = threading.Lock()
        self._slow_delay_s = 0.0
        self._slow_count = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ShardBackend":
        self.service.start()
        return self

    def stop(self) -> None:
        self.service.stop()

    # -- dispatch -------------------------------------------------------
    def _maybe_slow(self) -> None:
        with self._slow_lock:
            if self._slow_count <= 0:
                return
            self._slow_count -= 1
            delay = self._slow_delay_s
        time.sleep(delay)

    def dispatch_async(self, op: str, payload: Any):
        """Pipelined dispatch: ``serve`` ops return a ``Future`` resolved
        by the worker pool, so the connection loop keeps reading while
        slow handlers run — requests overlap inside one shard and
        replies go out as each finishes. Every other op (rare, cheap, or
        intentionally order-sensitive) returns ``None`` and takes the
        synchronous path in the loop thread.
        """
        if op != "serve":
            return None
        # An armed slow fault sleeps *here*, in the connection loop —
        # stalling the whole stream like a wedged shard, which is what
        # the timeout -> failover chaos path expects to observe.
        self._maybe_slow()
        assert isinstance(payload, Request)
        return self.service.submit(payload)

    def dispatch(self, op: str, payload: Any) -> Any:
        self._maybe_slow()
        if op == "serve":
            assert isinstance(payload, Request)
            return self.service.request(payload, timeout=30.0)
        if op == "apply":
            # Replica write path: apply an effective (post-conflict-
            # resolution) patch verbatim, exactly as journal replay does,
            # so replicas track the primary version-for-version.
            assert isinstance(payload, MapPatch)
            return self.server.ingest(
                payload, policy=ConflictPolicy.LAST_WRITER_WINS)
        if op == "ping":
            return "pong"
        if op == "version":
            return self.server.version
        if op == "changelog":
            return self.changelog()
        if op == "metrics":
            metrics = self.service.metrics
            return {
                "snapshot": metrics.snapshot(),
                "latency": metrics.latency_histograms(),
                "outcomes": metrics.outcome_counts(),
            }
        if op == "events":
            return EVENT_LOG.events()
        if op == "slow":
            with self._slow_lock:
                self._slow_delay_s = float(payload["delay_s"])
                self._slow_count = int(payload["count"])
            return None
        if op == "crash":
            # Injected fault: die without replying (process mode only;
            # LocalShard intercepts this op before dispatch).
            os._exit(17)
        raise ValueError(f"unknown shard op {op!r}")

    def changelog(self) -> List[Tuple[int, object]]:
        """The shard's full ``(version, MapChange)`` log, atomically."""
        with self.server._lock:
            return list(self.server.db.log.entries)


def _post_fork_sanitize() -> None:
    """Make inherited global state safe and quiet in a forked child.

    Fork can snapshot locks mid-acquisition by a router thread; every
    lock the child might touch through module globals is replaced with a
    fresh one. The inherited event ring is cleared so the shard ships
    only its *own* events when the router polls them.
    """
    EVENT_LOG._lock = threading.Lock()
    EVENT_LOG._events.clear()
    for counter in EVENT_LOG.counts_by_level.values():
        counter._lock = threading.Lock()


def shard_main(config: ShardConfig, sock) -> None:
    """Child-process entrypoint: boot the backend and serve the socket."""
    from repro.cluster.rpc import serve_connection

    _post_fork_sanitize()
    backend = ShardBackend(config).start()
    try:
        serve_connection(sock, backend.dispatch, backend.dispatch_async)
    finally:
        backend.stop()
        try:
            sock.close()
        except OSError:
            pass
