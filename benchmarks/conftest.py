"""Shared benchmark fixtures.

Every bench regenerates one artifact of the paper (table, figure, or an
in-text quantitative claim) on the synthetic substrate and prints a
ResultTable pairing the paper's value with the measured one. Benches
assert *shape* (orderings, rough factors), never exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240704)


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
