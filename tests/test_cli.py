"""CLI: generate / stats / validate / route / taxonomy."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def map_file(tmp_path):
    path = tmp_path / "city.json"
    assert main(["generate", "--kind", "city", "--seed", "3",
                 "--size", "3", "--out", str(path)]) == 0
    return path


class TestCli:
    def test_generate_city(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(["generate", "--kind", "city", "--seed", "3",
                     "--size", "2", "--out", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert path.exists()

    def test_generate_highway(self, tmp_path):
        path = tmp_path / "hw.json"
        assert main(["generate", "--kind", "highway", "--size", "2",
                     "--out", str(path)]) == 0
        assert path.exists()

    def test_generate_sampled(self, tmp_path):
        path = tmp_path / "s.json"
        assert main(["generate", "--kind", "sampled", "--seed", "1",
                     "--out", str(path)]) == 0

    def test_stats(self, map_file, capsys):
        assert main(["stats", str(map_file)]) == 0
        out = capsys.readouterr().out
        assert "lane length" in out
        assert "junction degree" in out

    def test_validate_clean_map(self, map_file, capsys):
        assert main(["validate", str(map_file)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_validate_broken_map_exits_nonzero(self, tmp_path):
        from repro.core import HDMap, Lane
        from repro.core.ids import ElementId
        from repro.geometry.polyline import straight
        from repro.storage import save_map

        hdmap = HDMap("bad")
        hdmap.create(Lane, centerline=straight([0, 0], [50, 0]),
                     left_boundary=ElementId("boundary", 99))
        path = tmp_path / "bad.json"
        save_map(hdmap, path)
        assert main(["validate", str(path)]) == 1

    def test_route_with_guidance(self, map_file, capsys):
        assert main(["route", str(map_file), "--from", "30,30",
                     "--to", "350,250"]) == 0
        out = capsys.readouterr().out
        assert "route:" in out
        assert "depart" in out and "arrive" in out

    def test_route_bad_point_format(self, map_file):
        with pytest.raises(SystemExit):
            main(["route", str(map_file), "--from", "30",
                  "--to", "350,250"])

    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "Localization" in out

    def test_reproducible_generation(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["generate", "--kind", "city", "--seed", "9", "--out", str(a)])
        main(["generate", "--kind", "city", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestObsCli:
    @pytest.fixture(autouse=True)
    def _reset_obs(self):
        yield
        from repro.obs import EVENT_LOG, TRACER
        TRACER.configure(enabled=False, reset=True)
        EVENT_LOG.clear()

    def test_obs_export_prometheus_covers_every_subsystem(self, map_file,
                                                          capsys):
        from repro.obs import validate_prometheus_text

        assert main(["obs", "export", str(map_file),
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert validate_prometheus_text(out) == []
        # serve, ingest, perf kernels, and log counters in ONE export
        assert "serve_latency_SpatialQuery_bucket" in out
        assert "ingest_freshness_bucket" in out
        assert "perf_grid_query_box_calls" in out
        assert "log_events_error 0" in out
        assert "# TYPE serve_freshness histogram" in out

    def test_obs_export_json(self, map_file, capsys):
        import json

        assert main(["obs", "export", str(map_file),
                     "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["ingest.batches.processed"] >= 1
        assert snap["serve.freshness"]["count"] >= 0

    def test_obs_smoke_gate_passes(self, map_file, capsys):
        assert main(["obs", "smoke", str(map_file)]) == 0
        assert "obs smoke passed" in capsys.readouterr().out

    def test_trace_sample_roundtrip_serve_bench(self, map_file, tmp_path,
                                                capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(["serve-bench", str(map_file), "--workers", "1",
                     "--vehicles", "2", "--route", "300",
                     "--trace-sample", str(spans),
                     "--trace-sample-rate", "0.5"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert spans.exists()

        assert main(["obs", "trace", "--input", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "fleet.request" in out
        assert "serve.request" in out

        assert main(["obs", "top", "--input", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "fleet.request" in out and "count" in out

        assert main(["obs", "trace", "--input", str(spans),
                     "--trace-id", "nope"]) == 1

    def test_trace_sample_roundtrip_ingest_bench(self, map_file, tmp_path,
                                                 capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(["ingest-bench", str(map_file), "--workers", "1",
                     "--vehicles", "2", "--routes", "1", "--route", "300",
                     "--trace-sample", str(spans),
                     "--trace-sample-rate", "1.0"]) == 0
        assert spans.exists()
        assert main(["obs", "trace", "--input", str(spans),
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "ingest.enqueue" in out
        assert "ingest.batch" in out
