"""Fleet-scale map serving: the concurrent front door of the HD-map database.

The survey's closing open problem is distributing "enormous map data" to
whole vehicle fleets [73]; ``repro.update.distribution`` and
``repro.storage.tilestore`` model the single-vehicle side. This package
adds the serving layer between them and the fleet:

- :mod:`repro.serve.api` — typed request/response messages
  (``GetTile``, ``SpatialQuery``, ``ChangesSince``, ``IngestPatch``,
  ``Snapshot``) with priorities, status codes, and an opt-in
  ``GetTile.max_staleness`` bound for degraded-mode reads;
- :mod:`repro.serve.cache` — :class:`ShardedTileCache`, a sharded,
  read-write-locked tile cache with a per-``(tile, version)`` encoded
  memo and stale-while-revalidate serving under a staleness bound;
- :mod:`repro.serve.admission` — :class:`AdmissionController`: bounded
  queueing with backpressure (reject on overflow, optionally displacing
  older low-priority work for high-priority arrivals) and load shedding
  of stale low-priority requests at dispatch;
- :mod:`repro.serve.metrics` — :class:`ServiceMetrics`: per-request-kind
  latency histograms, outcome counters, and the served map-freshness
  lag (primitives live in :mod:`repro.obs.metrics`);
- :mod:`repro.serve.service` — the worker-pool :class:`MapService` tying
  the above together (``stale_tile_versions`` sets the service-wide
  stale-while-revalidate default);
- :mod:`repro.serve.fleet` — a synthetic-vehicle load generator and report.

Degradation under injected faults (hot shards, invalidation storms,
request spikes) is certified by :mod:`repro.chaos`; ``docs/OPERATIONS.md``
maps the observable symptoms to these knobs.
"""

from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.api import (
    ChangesSince,
    GetTile,
    IngestPatch,
    Priority,
    Request,
    Response,
    Snapshot,
    SpatialQuery,
    Status,
)
from repro.serve.cache import RWLock, ShardedTileCache
from repro.serve.fleet import FleetReport, FleetSimulator, VehicleReport
from repro.serve.metrics import Counter, LatencyHistogram, ServiceMetrics
from repro.serve.service import MapService

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ChangesSince",
    "Counter",
    "FleetReport",
    "FleetSimulator",
    "GetTile",
    "IngestPatch",
    "LatencyHistogram",
    "MapService",
    "Priority",
    "Request",
    "Response",
    "RWLock",
    "ServiceMetrics",
    "ShardedTileCache",
    "Snapshot",
    "SpatialQuery",
    "Status",
    "VehicleReport",
]
