"""The verify gate: constraint engine edge cases, quarantine journal
semantics (including crash replay), pipeline/publisher enforcement, and
the chaos-report surfaces the fifth invariant renders through."""

import os
import pickle

import numpy as np
import pytest

from repro.chaos import ChaosReport, InvariantResult, check_served_map_clean
from repro.core import MapPatch
from repro.core.elements import ElementId, Lane, LaneBoundary
from repro.core.regulatory import RegulatoryElement, RuleType
from repro.core.validation import (
    ALL_CONSTRAINTS,
    C_BOUNDARY_CONTINUITY,
    C_LANE_WIDTH,
    C_REGULATORY_ATTACHMENT,
    ConstraintEngine,
    Severity,
)
from repro.geometry import Polyline
from repro.ingest import ConfirmedPatch, IngestPipeline
from repro.ingest.verify import QuarantineStore, VerifyGate
from repro.obs import HotCounter
from repro.update.distribution import MapDistributionServer
from repro.world import generate_grid_city


def _city(seed=7):
    return generate_grid_city(np.random.default_rng(seed), 2, 2,
                              block_size=150.0)


def _lane(eid=900_001, width=3.5, length=20.0, x=5_000.0):
    """A free-standing lane far from generated geometry; references are
    deliberately absent so only the physical checks fire."""
    return Lane(id=ElementId("lane", eid),
                centerline=Polyline(np.array([[x, 0.0], [x + length, 0.0]])),
                width=width, speed_limit=13.9)


def _degenerate_lane(eid=910_001):
    return Lane(id=ElementId("lane", eid),
                centerline=Polyline(np.array([[6_000.0, 0.0],
                                              [6_000.2, 0.0]])),
                left_boundary=ElementId("boundary", eid),
                right_boundary=ElementId("boundary", eid + 1),
                width=0.4, speed_limit=13.9)


# ----------------------------------------------------------------------
class TestConstraintEngine:
    def test_clean_generated_city_has_zero_errors(self):
        report = ConstraintEngine().check_map(_city())
        assert report.errors == []
        assert report.warnings == []
        assert report.checked > 0

    @pytest.mark.parametrize("width", [2.0, 7.0])
    def test_width_exactly_at_threshold_passes(self, width):
        # Bounds are inclusive: a legal-minimum (or maximum) lane is a
        # real road, not a fusion artifact.
        patch = MapPatch(source="t", confidence=0.9).add(_lane(width=width))
        report = ConstraintEngine().check_patch(_city(), patch)
        assert report.ok()
        assert report.violations == []

    @pytest.mark.parametrize("width", [1.999, 7.001, float("nan")])
    def test_width_just_outside_threshold_fails(self, width):
        patch = MapPatch(source="t", confidence=0.9).add(_lane(width=width))
        report = ConstraintEngine().check_patch(_city(), patch)
        assert not report.ok()
        assert report.counts() == {C_LANE_WIDTH: 1}

    def test_zero_length_boundary_is_an_error(self):
        # Polyline itself collapses exactly-duplicate vertices, so the
        # degenerate case the gate sees is a millimetre-scale chain:
        # length ~0 < min_boundary_length_m.
        boundary = LaneBoundary(
            id=ElementId("boundary", 920_001),
            line=Polyline(np.array([[5_000.0, 1.0], [5_000.001, 1.0]])))
        patch = MapPatch(source="t", confidence=0.9).add(boundary)
        report = ConstraintEngine().check_patch(_city(), patch)
        errors = report.errors
        assert len(errors) == 1
        assert errors[0].constraint == C_BOUNDARY_CONTINUITY
        assert errors[0].severity is Severity.ERROR
        assert errors[0].element_id == boundary.id

    def test_multi_violation_patch_yields_one_consolidated_report(self):
        patch = MapPatch(source="t", confidence=0.9)
        patch.add(_degenerate_lane())
        patch.add(LaneBoundary(
            id=ElementId("boundary", 920_002),
            line=Polyline(np.array([[6_100.0, 0.0], [6_160.0, 0.0],
                                    [6_101.0, 0.05]]))))
        patch.add(RegulatoryElement(id=ElementId("regulatory", 930_001),
                                    rule_type=RuleType.SPEED_LIMIT,
                                    lanes=(), value=99.0))
        report = ConstraintEngine().check_patch(_city(), patch)
        # One report for the whole patch, with every constraint family
        # that fired represented — not one report per op.
        assert not report.ok()
        counts = report.counts()
        assert counts[C_LANE_WIDTH] >= 1
        assert counts[C_BOUNDARY_CONTINUITY] >= 1
        assert counts[C_REGULATORY_ATTACHMENT] >= 1
        assert len(report.errors) >= 3
        assert "error(s)" in report.summary()

    def test_catalog_names_are_the_metric_suffixes(self):
        assert set(ALL_CONSTRAINTS) == {
            "lane_width", "boundary_continuity", "topology_reachability",
            "regulatory_attachment", "layer_agreement"}


# ----------------------------------------------------------------------
class TestQuarantineStore:
    def test_journal_replays_after_crash(self, tmp_path):
        path = os.path.join(str(tmp_path), "quarantine.jsonl")
        city = _city()
        gate = VerifyGate(city, quarantine=QuarantineStore(path))
        bad = ConfirmedPatch(
            key="t:bad:0",
            patch=MapPatch(source="t", confidence=0.9).add(
                _degenerate_lane()))
        assert not gate.admit(bad)
        gate.quarantine.close()  # crash: the process goes away

        revived = QuarantineStore.load(path)
        assert "t:bad:0" in revived
        records = revived.records()
        assert len(records) == 1
        assert records[0]["key"] == "t:bad:0"
        assert records[0]["errors"] >= 1
        assert any(v["constraint"] == C_LANE_WIDTH
                   for v in records[0]["violations"])
        # Replayed keys still dedup redelivery of the same rejection.
        gate2 = VerifyGate(city, quarantine=revived)
        assert not gate2.admit(bad)
        assert len(revived) == 1
        assert revived.duplicates == 1

    def test_violation_counts_aggregate_per_constraint(self):
        gate = VerifyGate(_city())
        gate.admit(ConfirmedPatch(
            key="t:bad:1",
            patch=MapPatch(source="t", confidence=0.9).add(
                _degenerate_lane())))
        counts = gate.quarantine.violation_counts()
        assert counts.get(C_LANE_WIDTH, 0) >= 1


# ----------------------------------------------------------------------
class TestGateEnforcement:
    def test_stage_filter_drops_only_quarantined(self):
        server = MapDistributionServer(_city().copy())
        pipe = IngestPipeline(server, n_workers=1, n_partitions=1)
        clean = ConfirmedPatch(
            key="t:clean:0",
            patch=MapPatch(source="t", confidence=0.9).add(_lane()))
        bad = ConfirmedPatch(
            key="t:bad:2",
            patch=MapPatch(source="t", confidence=0.9).add(
                _degenerate_lane()))
        kept = pipe.verify_gate.filter([clean, bad])
        assert kept == [clean]
        assert clean.verified and bad.verified
        verify = pipe.stats()["verify"]
        assert verify["checked"] == 2
        assert verify["passed"] == 1
        assert verify["quarantined"] == 1
        assert verify["by_constraint"][C_LANE_WIDTH] >= 1
        assert verify["quarantine_depth"] == 1

    def test_publisher_backstop_quarantines_direct_publishes(self):
        server = MapDistributionServer(_city().copy())
        pipe = IngestPipeline(server, n_workers=1, n_partitions=1)
        base_version = server.version
        result = pipe.publisher.publish(ConfirmedPatch(
            key="t:bad:3",
            patch=MapPatch(source="t", confidence=0.9).add(
                _degenerate_lane())))
        assert result.quarantined
        assert not result.published
        assert server.version == base_version  # nothing landed
        assert "t:bad:3" in pipe.verify_gate.quarantine
        # A repaired patch under the same key publishes: quarantine
        # never burns the idempotency key on the published set.
        repaired = pipe.publisher.publish(ConfirmedPatch(
            key="t:bad:3",
            patch=MapPatch(source="t", confidence=0.9).add(_lane())))
        assert repaired.published

    def test_verified_patches_are_not_rechecked(self):
        server = MapDistributionServer(_city().copy())
        pipe = IngestPipeline(server, n_workers=1, n_partitions=1)
        confirmed = ConfirmedPatch(
            key="t:clean:1",
            patch=MapPatch(source="t", confidence=0.9).add(_lane()),
            verified=True)  # the stage already judged it
        assert pipe.publisher.publish(confirmed).published
        assert pipe.stats()["verify"]["checked"] == 0

    def test_verify_disabled_pipeline_has_no_gate(self):
        server = MapDistributionServer(_city().copy())
        pipe = IngestPipeline(server, n_workers=1, n_partitions=1,
                              verify=False)
        assert pipe.verify_gate is None
        result = pipe.publisher.publish(ConfirmedPatch(
            key="t:bad:4",
            patch=MapPatch(source="t", confidence=0.9).add(
                _degenerate_lane())))
        assert result.published  # measurement mode: anything lands


# ----------------------------------------------------------------------
class TestChaosSurfaces:
    def test_zero_sample_invariant_renders_vacuous(self):
        result = InvariantResult("zero constraint violations served",
                                 True, "gate unexercised", samples=0)
        assert "ok (vacuous)" in str(result)
        assert "PASS" not in str(result)

    def test_nonzero_sample_invariant_renders_plain_ok(self):
        result = InvariantResult("zero constraint violations served",
                                 True, "3 quarantined", samples=3)
        assert str(result).startswith("[ok]")
        assert "vacuous" not in str(result)

    def test_report_format_survives_unexercised_gate(self):
        report = ChaosReport(
            fault_class="sensor", plan="p",
            invariants=[InvariantResult("zero constraint violations "
                                        "served", True, "no patches",
                                        samples=0)],
            stats={"verify": {"checked": 0, "quarantined": 0}})
        text = report.format()  # must not divide by zero
        assert "gate unexercised" in text
        assert "ok (vacuous)" in text
        assert report.certify()

    def test_check_served_map_clean_flags_missing_quarantine(self):
        city = _city()
        gate = VerifyGate(city)
        result = check_served_map_clean(
            city, gate=gate, events=[],
            malformed_keys=["chaos:geometry.degenerate_lane:0"])
        assert not result.ok
        assert "missing from quarantine" in result.detail

    def test_check_served_map_clean_passes_quarantined_injection(self):
        city = _city()
        gate = VerifyGate(city)
        bad = ConfirmedPatch(
            key="chaos:geometry.degenerate_lane:0",
            patch=MapPatch(source="chaos", confidence=0.9).add(
                _degenerate_lane()))
        assert not gate.admit(bad)
        events = [{"event": "patch_quarantined"}]
        result = check_served_map_clean(
            city, gate=gate, events=events,
            malformed_keys=["chaos:geometry.degenerate_lane:0"])
        assert result.ok
        assert result.samples == 1


# ----------------------------------------------------------------------
class TestHotCounter:
    def test_counts_and_bulk_add(self):
        counter = HotCounter()
        for _ in range(5):
            counter.add()
        counter.add(3)
        assert counter.value == 8
        # Reading the value must not consume the underlying count.
        assert counter.value == 8

    def test_is_a_counter_for_registry_dispatch(self):
        from repro.obs import Counter
        assert isinstance(HotCounter(), Counter)

    def test_pickle_round_trip_preserves_value(self):
        counter = HotCounter()
        counter.add(4)
        clone = pickle.loads(pickle.dumps(counter))
        assert clone.value == 4
        clone.add()
        assert clone.value == 5
        assert counter.value == 4
