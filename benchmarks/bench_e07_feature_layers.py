"""E7 — Kim et al. [31]: crowd-sourced new feature layer on an existing map.

Paper: centimetre-level accuracy for the new layer (vs few-metres with
traditional GNSS georeferencing), because contributors localize against
the accurate base map. Shape: map-relative registration an order of
magnitude better than GNSS-absolute.
"""

import numpy as np
from conftest import once

from repro.creation import FeatureLayerMapper
from repro.eval import ResultTable
from repro.world import drive_lane_sequence, generate_grid_city


def _experiment(rng):
    city = generate_grid_city(rng, 3, 2, block_size=200.0)
    lanes = [l for l in city.lanes() if l.length > 100]
    trajs = [drive_lane_sequence(city, [lane.id], rng=rng)
             for lane in lanes[:6] for _ in range(3)]

    relative = FeatureLayerMapper(city, map_relative=True)
    absolute = FeatureLayerMapper(city, map_relative=False)
    rel_obs, abs_obs = [], []
    for traj in trajs:
        rel_obs.extend(relative.collect(city, traj, rng))
        abs_obs.extend(absolute.collect(city, traj, rng))
    return relative.fuse(rel_obs, city), absolute.fuse(abs_obs, city)


def test_e07_feature_layers(benchmark, rng):
    relative, absolute = once(benchmark, _experiment, rng)

    table = ResultTable("E7", "crowd-sourced feature layers [31]")
    table.add("map-relative layer error (m)", "cm-level",
              f"{relative.error.mean:.3f}",
              ok=(not np.isnan(relative.error.mean))
              and relative.error.mean < 0.3)
    table.add("GNSS-absolute layer error (m)", "metres",
              f"{absolute.error.mean:.3f}",
              ok=(not np.isnan(absolute.error.mean))
              and absolute.error.mean > relative.error.mean * 2)
    table.add("features mapped", ">= 3", str(relative.matched),
              ok=relative.matched >= 3)
    table.print()
    assert table.all_ok()
