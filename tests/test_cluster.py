"""repro.cluster: hashing, RPC picklability, routing, failover, chaos."""

import pickle
import socket
import threading

import numpy as np
import pytest

from repro.chaos import (
    CLUSTER_SHARD_CRASH,
    ClusterChaosHarness,
    ClusterWorkload,
    FaultPlan,
    FaultSpec,
)
from repro.cluster import ClusterMapClient, ClusterRouter
from repro.cluster.rpc import (
    PipelinedConnection,
    ShardDead,
    ShardTimeout,
    recv_frame,
    send_frame,
)
from repro.core import MapPatch, SignType, TrafficSign
from repro.core.tiles import TileId, consistent_hash_owner, ownership_map
from repro.errors import ClusterError
from repro.obs.metrics import Counter, Gauge, LatencyHistogram
from repro.serve.api import (
    ChangesSince,
    GetTile,
    IngestPatch,
    Response,
    Snapshot,
    SpatialQuery,
    Status,
)
from repro.serve.metrics import ServiceMetrics
from repro.storage.tilestore import TileStore, TileStoreStats

TILE_GRID = [TileId(x, y) for x in range(16) for y in range(16)]


def _local_router(city, **kw):
    kw.setdefault("n_shards", 2)
    kw.setdefault("tile_size", 120.0)
    kw.setdefault("transport", "local")
    return ClusterRouter(city, **kw)


def _sign_patch(city, position, confidence=0.9, source="probe"):
    eid = city.new_id("cluster-test-sign")
    patch = MapPatch(source=source, confidence=confidence)
    patch.add(TrafficSign(id=eid, position=np.asarray(position, float),
                          sign_type=SignType.DIRECTION))
    return eid, patch


class TestConsistentHash:
    def test_owner_in_range_and_deterministic(self):
        for tile in TILE_GRID:
            owner = consistent_hash_owner(tile, 5)
            assert 0 <= owner < 5
            assert owner == consistent_hash_owner(tile, 5)

    def test_all_shards_get_tiles(self):
        owners = {consistent_hash_owner(t, 4) for t in TILE_GRID}
        assert owners == {0, 1, 2, 3}

    def test_growth_moves_bounded_fraction(self):
        # Rendezvous hashing: growing N -> N+1 relocates ~1/(N+1) of the
        # keys; anything approaching a modulo re-hash (N/(N+1)) is a bug.
        for n in (2, 4, 8):
            before = {t: consistent_hash_owner(t, n) for t in TILE_GRID}
            after = {t: consistent_hash_owner(t, n + 1) for t in TILE_GRID}
            moved = [t for t in TILE_GRID if before[t] != after[t]]
            assert 0 < len(moved) / len(TILE_GRID) < 2.5 / (n + 1)
            # every relocated tile lands on the *new* shard
            assert all(after[t] == n for t in moved)

    def test_ownership_map_matches_pointwise(self):
        got = ownership_map(TILE_GRID, 3)
        assert got == {t: consistent_hash_owner(t, 3) for t in TILE_GRID}


class TestPicklability:
    """Everything that crosses the shard RPC boundary must pickle."""

    def test_requests_and_response_round_trip(self, city):
        eid, patch = _sign_patch(city, (10.0, 20.0))
        for request in (GetTile(tile=TileId(0, 0), encoded=True),
                        SpatialQuery(x=1.0, y=2.0, radius=50.0),
                        ChangesSince(since_version=3),
                        Snapshot(),
                        IngestPatch(patch=patch)):
            clone = pickle.loads(pickle.dumps(request))
            assert type(clone) is type(request)
        response = Response(status=Status.OK, payload=b"blob", version=7)
        clone = pickle.loads(pickle.dumps(response))
        assert clone.ok and clone.payload == b"blob" and clone.version == 7

    def test_tile_store_stats_round_trip(self):
        stats = TileStoreStats()
        stats.record_hit()
        stats.record_load()
        clone = pickle.loads(pickle.dumps(stats))
        assert (clone.hits, clone.loads, clone.evictions) == (1, 1, 0)
        clone.record_hit()  # the rebuilt lock must be usable
        assert clone.hits == 2

    def test_metric_primitives_round_trip(self):
        counter = Counter()
        counter.add(3)
        gauge = Gauge()
        gauge.set(11)
        hist = LatencyHistogram()
        hist.record(0.004)
        hist.record(0.250)
        c2, g2, h2 = pickle.loads(pickle.dumps((counter, gauge, hist)))
        assert c2.value == 3 and g2.value == 11
        assert h2.count == 2 and h2.snapshot() == hist.snapshot()
        merged = LatencyHistogram()
        merged.merge(h2)  # unpickled histograms feed snapshot merging
        assert merged.count == 2

    def test_service_metrics_round_trip(self):
        metrics = ServiceMetrics()
        metrics.record_freshness(0.01)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.freshness.count == 1


class TestRouting:
    def test_get_tile_byte_parity_with_single_store(self, city):
        store = TileStore.build(city, 120.0)
        with _local_router(city) as router:
            for tile in store.tiles():
                response = router.request(GetTile(tile=tile, encoded=True))
                assert response.ok, response.error
                assert response.payload == store._blobs[tile]

    def test_spatial_query_dedups_across_shard_boundaries(self, city):
        with _local_router(city, n_shards=3) as router:
            # radius spans many tiles, so border elements replicated
            # into adjacent tiles come back from multiple shards
            response = router.request(SpatialQuery(x=150.0, y=150.0,
                                                   radius=250.0))
            assert response.ok
            ids = [e.id for e in response.payload]
            assert len(ids) == len(set(ids))
            want = {e.id for e in
                    city.elements_in_radius(150.0, 150.0, 250.0)}
            assert set(ids) == want

    def test_ingest_routes_to_owner_and_client_syncs(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            response = router.request(IngestPatch(patch=patch))
            assert response.ok and response.payload.accepted
            assert client.sync() == 1
            assert eid in client.local
            home = router._element_tile[eid]
            assert router.owner_of_tile(home) == \
                router._owner_of(home, router._owner, router.n_shards)

    def test_multi_tile_patch_splits_across_shards(self, city):
        with _local_router(city, n_shards=3) as router:
            client = ClusterMapClient(router)
            patch = MapPatch(source="probe", confidence=0.9)
            eids = []
            rng = np.random.default_rng(5)
            min_x, min_y, max_x, max_y = city.bounds()
            for _ in range(6):
                eid = city.new_id("cluster-test-sign")
                patch.add(TrafficSign(
                    id=eid,
                    position=np.array([rng.uniform(min_x, max_x),
                                       rng.uniform(min_y, max_y)]),
                    sign_type=SignType.DIRECTION))
                eids.append(eid)
            response = router.request(IngestPatch(patch=patch))
            assert response.ok and response.payload.accepted
            client.sync()
            assert all(eid in client.local for eid in eids)
            owners = {router.owner_of_tile(router._element_tile[e])
                      for e in eids}
            assert len(owners) > 1, "patch should have split across shards"

    def test_cluster_version_monotone_across_requests(self, city):
        with _local_router(city) as router:
            seen = []
            for i in range(6):
                _, patch = _sign_patch(city, (10.0 + 30 * i, 20.0))
                response = router.request(IngestPatch(patch=patch))
                assert response.ok
                seen.append(response.version)
            assert seen == sorted(seen)


class TestChangesSinceMerge:
    def test_concurrent_publishes_merge_in_per_shard_log_order(self, city):
        with _local_router(city, n_shards=3) as router:
            client = ClusterMapClient(router)
            rng = np.random.default_rng(11)
            min_x, min_y, max_x, max_y = city.bounds()
            patches = []
            for _ in range(18):
                _, patch = _sign_patch(
                    city, (rng.uniform(min_x, max_x),
                           rng.uniform(min_y, max_y)))
                patches.append(patch)

            def publish(chunk):
                for patch in chunk:
                    response = router.request(IngestPatch(patch=patch))
                    assert response.ok

            threads = [threading.Thread(target=publish,
                                        args=(patches[i::3],))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            delta = router.changes_since(
                {i: 0 for i in range(router.n_shards)})
            assert len(delta) == 18
            # per-shard slices arrive in that shard's log order, and the
            # advertised vector matches each slice's capture version
            for index, shard_delta in delta.deltas.items():
                log = router.shard_changelog(index)
                versions = [v for v, _ in log]
                assert versions == sorted(versions)
                assert versions == list(range(1, len(versions) + 1))
                assert delta.versions[index] == shard_delta.version
            assert client.sync() == 18
            assert client.is_consistent()

    def test_client_skips_stale_shard_deltas(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            _, patch = _sign_patch(city, (33.0, 44.0))
            assert router.request(IngestPatch(patch=patch)).ok
            delta = router.changes_since({i: 0 for i in
                                          range(router.n_shards)})
            assert client.apply_delta(delta) == 1
            # re-delivering the same delta is a no-op: versions are stale
            assert client.apply_delta(delta) == 0
            assert client.is_consistent()


class TestFailoverAndRestart:
    def test_read_after_crash_restarts_from_journal(self, city):
        store = TileStore.build(city, 120.0)
        with _local_router(city) as router:
            tile = store.tiles()[0]
            router.kill_shard(router.owner_of_tile(tile))
            response = router.request(GetTile(tile=tile, encoded=True))
            assert response.ok
            assert response.payload == store._blobs[tile]
            assert router.restarts.value >= 1

    def test_acked_write_survives_owner_crash(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            assert router.request(IngestPatch(patch=patch)).ok
            owner = router.owner_of_tile(router._element_tile[eid])
            router.kill_shard(owner)
            # next write lands on the restarted shard with history intact
            eid2, patch2 = _sign_patch(city, (35.0, 46.0))
            response = router.request(IngestPatch(patch=patch2))
            assert response.ok and response.payload.accepted
            client.sync()
            assert eid in client.local and eid2 in client.local
            assert client.is_consistent()


class TestRebalance:
    def test_growth_moves_only_rehashed_tiles(self, city):
        with _local_router(city) as router:
            before = {t: router.owner_of_tile(t) for t in router.tiles()}
            moved = router.rebalance(3)
            after = {t: router.owner_of_tile(t) for t in router.tiles()}
            changed = [t for t in before if before[t] != after[t]]
            assert len(changed) == moved > 0
            assert all(after[t] == 2 for t in changed)

    def test_reads_and_writes_survive_growth(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            assert router.request(IngestPatch(patch=patch)).ok
            router.rebalance(3)
            response = router.request(SpatialQuery(x=150.0, y=150.0,
                                                   radius=250.0))
            ids = [e.id for e in response.payload]
            assert len(ids) == len(set(ids))
            eid2, patch2 = _sign_patch(city, (200.0, 210.0))
            assert router.request(IngestPatch(patch=patch2)).ok
            client.sync()
            assert eid in client.local and eid2 in client.local
            assert client.is_consistent()

    def test_shrink_rejected(self, city):
        with _local_router(city, n_shards=2) as router:
            with pytest.raises(ClusterError, match="shrink"):
                router.rebalance(1)


class TestClusterChaosHarness:
    WORKLOAD = ClusterWorkload(n_shards=2, replicas=0, transport="local",
                               tile_size=120.0, ops=24, reads_per_op=1,
                               sync_every=6, seed=7)

    def test_inert_run_certifies_and_matches_single_node(self, city):
        harness = ClusterChaosHarness(city, FaultPlan.none(7),
                                      workload=self.WORKLOAD)
        report = harness.run("shard-inert")
        assert report.certify(), report.violations()
        assert harness.final_map_bytes() == harness.run_plain()

    def test_crash_plan_certifies(self, city):
        plan = FaultPlan([FaultSpec(CLUSTER_SHARD_CRASH, probability=1.0,
                                    after=5, max_count=2)], seed=7)
        harness = ClusterChaosHarness(city, plan, workload=self.WORKLOAD)
        report = harness.run("shard")
        assert report.fired[CLUSTER_SHARD_CRASH] == 2
        assert report.certify(), report.violations()
        assert report.stats["restarts"] >= 1


class TestPipelinedConnection:
    """Wire-level pipelining: many calls in flight on one socket.

    The peer side is driven by the test itself with the raw frame
    helpers, so reply timing and ordering are fully deterministic.
    """

    def _pair(self):
        left, right = socket.socketpair()
        return PipelinedConnection(left), right

    def test_concurrent_calls_matched_out_of_order(self):
        conn, peer = self._pair()
        try:
            n = 5
            results = [None] * n

            def caller(slot):
                results[slot] = conn.call("echo", slot, timeout_s=5.0)

            threads = [threading.Thread(target=caller, args=(s,))
                       for s in range(n)]
            for t in threads:
                t.start()
            # drain all n requests before answering any: every caller is
            # now simultaneously in flight on the one connection
            pending = [recv_frame(peer) for _ in range(n)]
            assert conn.inflight == n
            # answer newest-first: replies must match by echoed id, not
            # by arrival order
            for request_id, (op, payload) in reversed(pending):
                assert op == "echo"
                send_frame(peer, request_id, ("ok", payload * 10))
            for t in threads:
                t.join()
            assert results == [slot * 10 for slot in range(n)]
            assert conn.inflight == 0
            assert conn.late_discards == 0
        finally:
            conn.close()
            peer.close()

    def test_late_reply_discarded_without_desync(self):
        # Satellite: a timed-out request's reply arriving while later
        # traffic flows must be dropped by id, not shift the stream.
        conn, peer = self._pair()
        try:
            timed_out = []

            def slow_caller():
                try:
                    conn.call("slow", None, timeout_s=0.05)
                except ShardTimeout:
                    timed_out.append(True)

            t = threading.Thread(target=slow_caller)
            t.start()
            slow_id, (op, _) = recv_frame(peer)
            assert op == "slow"
            t.join()
            assert timed_out, "call should have timed out"

            # the abandoned reply lands *before* the next call's reply
            send_frame(peer, slow_id, ("ok", "too late"))

            fast_result = []
            ft = threading.Thread(
                target=lambda: fast_result.append(
                    conn.call("fast", 7, timeout_s=5.0)))
            ft.start()
            fast_id, (op, payload) = recv_frame(peer)
            assert op == "fast"
            send_frame(peer, fast_id, ("ok", payload + 1))
            ft.join()
            # FIFO socket: the reader consumed the late frame first, so
            # a correct fast result proves the stream did not desync
            assert fast_result == [8]
            assert conn.late_discards == 1
            assert conn.inflight == 0
        finally:
            conn.close()
            peer.close()

    def test_peer_death_fails_every_inflight_call(self):
        conn, peer = self._pair()
        outcomes = []

        def caller():
            try:
                conn.call("hang", timeout_s=5.0)
                outcomes.append("ok")
            except ShardDead:
                outcomes.append("dead")

        threads = [threading.Thread(target=caller) for _ in range(3)]
        for t in threads:
            t.start()
        for _ in range(3):
            recv_frame(peer)
        peer.close()  # EOF with three calls outstanding
        for t in threads:
            t.join()
        assert outcomes == ["dead", "dead", "dead"]
        with pytest.raises(ShardDead):
            conn.call("more")
        conn.close()


class TestReplicaReads:
    def test_round_robin_reads_hit_replicas(self, city):
        store = TileStore.build(city, 120.0)
        with _local_router(city, replicas=1) as router:
            tile = store.tiles()[0]
            for _ in range(6):
                response = router.request(GetTile(tile=tile, encoded=True))
                assert response.ok
                assert response.payload == store._blobs[tile]
            assert router.replica_hits.value >= 1
            # primary healthy throughout: replica reads are scaling,
            # not failover
            assert router.failovers.value == 0
            assert router.replica_lag.value == 0

    def test_replica_behind_version_floor_is_skipped(self, city):
        with _local_router(city, replicas=1) as router:
            tile = next(t for t in router.tiles()
                        if router.owner_of_tile(t) == 0)
            handle = router._handles[0]
            # pretend the router has observed a version this shard's
            # replica has not reached: every replica pick must be
            # rejected by the floor and retried on the primary
            with handle.vlock:
                handle.last_version += 5
            for _ in range(6):
                response = router.request(GetTile(tile=tile, encoded=True))
                assert response.ok
            assert router.replica_lag.value >= 1
            assert router.replica_hits.value == 0

    def test_write_then_read_never_goes_backwards(self, city):
        with _local_router(city, replicas=1) as router:
            floor = 0
            for i in range(8):
                _, patch = _sign_patch(city, (10.0 + 25 * i, 20.0))
                ack = router.request(IngestPatch(patch=patch))
                assert ack.ok
                floor = max(floor, ack.version)
                read = router.request(
                    ChangesSince(since_version=0))
                assert read.ok
                assert read.version >= floor


class TestGetTileCoalescing:
    def test_concurrent_identical_reads_coalesce_byte_identical(self, city):
        store = TileStore.build(city, 120.0)
        # service latency keeps the leader in flight long enough for
        # the burst to pile onto its flight entry
        with _local_router(city, service_latency_s=0.05) as router:
            tile = store.tiles()[0]
            n = 6
            payloads = [None] * n
            start = threading.Barrier(n)

            def one(slot):
                start.wait()
                response = router.request(GetTile(tile=tile, encoded=True))
                if response.ok:
                    payloads[slot] = response.payload

            threads = [threading.Thread(target=one, args=(s,))
                       for s in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            want = store._blobs[tile]
            assert all(p == want for p in payloads)
            assert router.read_coalesced.value >= 1

    def test_legacy_lockstep_router_never_coalesces(self, city):
        store = TileStore.build(city, 120.0)
        with _local_router(city, pipeline=False,
                           service_latency_s=0.02) as router:
            tile = store.tiles()[0]
            threads = [threading.Thread(
                target=lambda: router.request(
                    GetTile(tile=tile, encoded=True)))
                for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert router.read_coalesced.value == 0
            assert router.replica_hits.value == 0


class TestProcessTransport:
    def test_end_to_end_over_sockets(self, city):
        store = TileStore.build(city, 120.0)
        router = ClusterRouter(city, n_shards=2, tile_size=120.0,
                               replicas=1, transport="process")
        try:
            tile = store.tiles()[0]
            response = router.request(GetTile(tile=tile, encoded=True))
            assert response.ok and response.payload == store._blobs[tile]

            # kill the owner: the read must fail over to the replica
            # (not pay a journal-replay restart on the read path)
            router.kill_shard(router.owner_of_tile(tile))
            response = router.request(GetTile(tile=tile, encoded=True))
            assert response.ok and response.payload == store._blobs[tile]
            assert router.failovers.value >= 1
            assert router.restarts.value == 0

            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            response = router.request(IngestPatch(patch=patch))
            assert response.ok and response.payload.accepted
            client.sync()
            assert eid in client.local and client.is_consistent()

            per_shard = router.collect_shard_metrics()
            assert set(per_shard) == {0, 1}
        finally:
            router.close()
