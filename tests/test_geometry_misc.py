"""Frenet frames, geodesy, rasters, and the grid index."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.frenet import FrenetFrame
from repro.geometry.geodesy import (
    LocalProjector,
    haversine_distance,
    metres_to_miles,
    miles_to_metres,
)
from repro.geometry.index import GridIndex
from repro.geometry.polyline import straight
from repro.geometry.raster import BitmaskRaster, GridSpec, RasterGrid


class TestFrenet:
    def setup_method(self):
        self.frame = FrenetFrame(straight([0, 0], [100, 0], spacing=5.0))

    def test_roundtrip(self):
        fp = self.frame.to_frenet([40.0, 3.0])
        assert fp.s == pytest.approx(40.0)
        assert fp.d == pytest.approx(3.0)
        back = self.frame.to_cartesian(fp.s, fp.d)
        assert np.allclose(back, [40.0, 3.0])

    def test_path_to_cartesian(self):
        pts = self.frame.path_to_cartesian(np.array([0.0, 50.0]),
                                           np.array([1.0, -1.0]))
        assert np.allclose(pts, [[0, 1], [50, -1]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            self.frame.path_to_cartesian(np.zeros(3), np.zeros(4))


class TestGeodesy:
    def test_local_roundtrip(self):
        proj = LocalProjector(lat0=33.97, lon0=-117.33)  # Riverside, CA
        lat = np.array([33.975, 33.96])
        lon = np.array([-117.32, -117.34])
        local = proj.to_local(lat, lon)
        lat2, lon2 = proj.to_geographic(local)
        assert np.allclose(lat, lat2, atol=1e-9)
        assert np.allclose(lon, lon2, atol=1e-9)

    def test_one_degree_latitude_is_about_111km(self):
        proj = LocalProjector(0.0, 0.0)
        local = proj.to_local(np.array([1.0]), np.array([0.0]))
        assert local[0, 1] == pytest.approx(110574.0, rel=0.01)

    def test_haversine_matches_projection_nearby(self):
        proj = LocalProjector(40.0, -75.0)
        local = proj.to_local(np.array([40.01]), np.array([-75.0]))
        hav = haversine_distance(40.0, -75.0, 40.01, -75.0)
        assert hav == pytest.approx(float(local[0, 1]), rel=0.01)

    def test_mile_conversion_roundtrip(self):
        assert metres_to_miles(miles_to_metres(3.7)) == pytest.approx(3.7)


class TestRasterGrid:
    def test_spec_from_bounds(self):
        spec = GridSpec.from_bounds((0, 0, 10, 5), 0.5)
        assert spec.width == 20
        assert spec.height == 10

    def test_spec_rejects_bad_resolution(self):
        with pytest.raises(GeometryError):
            GridSpec.from_bounds((0, 0, 1, 1), 0.0)

    def test_world_cell_roundtrip(self):
        spec = GridSpec.from_bounds((0, 0, 10, 10), 1.0)
        cells = spec.world_to_cell(np.array([[2.4, 7.9]]))
        assert tuple(cells[0]) == (2, 7)
        centre = spec.cell_to_world(cells)
        assert np.allclose(centre[0], [2.5, 7.5])

    def test_set_points_and_sample(self):
        grid = RasterGrid(GridSpec.from_bounds((0, 0, 10, 10), 1.0))
        n = grid.set_points(np.array([[1.5, 1.5], [50.0, 50.0]]), 2.0)
        assert n == 1  # out-of-range point ignored
        assert grid.sample(np.array([[1.5, 1.5]]))[0] == 2.0
        assert grid.sample(np.array([[50.0, 50.0]]), outside=-1.0)[0] == -1.0

    def test_add_points_accumulates(self):
        grid = RasterGrid(GridSpec.from_bounds((0, 0, 4, 4), 1.0))
        pts = np.array([[0.5, 0.5], [0.6, 0.6]])
        grid.add_points(pts)
        assert grid.data[0, 0] == 2.0

    def test_draw_polyline_thickness(self):
        grid = RasterGrid(GridSpec.from_bounds((0, 0, 20, 10), 0.5))
        grid.draw_polyline(straight([2, 5], [18, 5]), thickness=2.0)
        # Cells 1 m above the line must be set.
        assert grid.sample(np.array([[10.0, 5.8]]))[0] == 1.0
        assert grid.sample(np.array([[10.0, 8.0]]))[0] == 0.0


class TestBitmaskRaster:
    def setup_method(self):
        spec = GridSpec.from_bounds((0, 0, 20, 10), 0.5)
        self.raster = BitmaskRaster(spec, ["marking", "edge"])

    def test_class_limit(self):
        with pytest.raises(GeometryError):
            BitmaskRaster(self.raster.spec, [f"c{i}" for i in range(9)])

    def test_duplicate_classes_rejected(self):
        with pytest.raises(GeometryError):
            BitmaskRaster(self.raster.spec, ["a", "a"])

    def test_bits_are_independent(self):
        self.raster.mark_points("marking", np.array([[5.0, 5.0]]))
        self.raster.mark_points("edge", np.array([[5.0, 5.0]]))
        assert self.raster.layer("marking")[10, 10]
        assert self.raster.layer("edge")[10, 10]

    def test_unknown_class(self):
        with pytest.raises(GeometryError):
            self.raster.bit_of("nope")

    def test_match_score_perfect_and_shifted(self):
        line = straight([2, 5], [18, 5])
        self.raster.mark_polyline("marking", line)
        obs = BitmaskRaster(self.raster.spec, ["marking", "edge"])
        obs.mark_polyline("marking", line)
        assert self.raster.match_score(obs) == pytest.approx(1.0)
        shifted = obs.shifted(0, 4)  # 2 m off
        assert self.raster.match_score(shifted) < 0.2

    def test_match_score_empty_observation(self):
        obs = BitmaskRaster(self.raster.spec, ["marking", "edge"])
        assert self.raster.match_score(obs) == 0.0


class TestGridIndex:
    def test_insert_query_point(self):
        idx = GridIndex(10.0)
        idx.insert("a", (0, 0, 5, 5))
        idx.insert("b", (20, 20, 30, 30))
        assert idx.query_point(2, 2) == ["a"]
        assert idx.query_point(50, 50) == []

    def test_query_box_intersection(self):
        idx = GridIndex(10.0)
        idx.insert("a", (0, 0, 5, 5))
        idx.insert("b", (8, 8, 12, 12))
        hits = set(idx.query_box((4, 4, 9, 9)))
        assert hits == {"a", "b"}

    def test_remove(self):
        idx = GridIndex(10.0)
        idx.insert("a", (0, 0, 5, 5))
        idx.remove("a")
        assert "a" not in idx
        assert idx.query_point(2, 2) == []

    def test_reinsert_updates_bounds(self):
        idx = GridIndex(10.0)
        idx.insert("a", (0, 0, 1, 1))
        idx.insert("a", (100, 100, 101, 101))
        assert idx.query_point(0.5, 0.5) == []
        assert idx.query_point(100.5, 100.5) == ["a"]

    def test_nearest_with_exact_distance(self):
        idx = GridIndex(10.0)
        centres = {"a": (0.0, 0.0), "b": (50.0, 0.0), "c": (7.0, 7.0)}
        for key, (x, y) in centres.items():
            idx.insert(key, (x, y, x, y))

        def dist(key):
            cx, cy = centres[key]
            return math.hypot(cx - 6.0, cy - 6.0)

        key, d = idx.nearest(6.0, 6.0, dist)
        assert key == "c"
        assert d == pytest.approx(math.hypot(1.0, 1.0))

    def test_nearest_empty_raises(self):
        with pytest.raises(GeometryError):
            GridIndex(10.0).nearest(0, 0, lambda k: 0.0)

    def test_invalid_bounds(self):
        idx = GridIndex(10.0)
        with pytest.raises(GeometryError):
            idx.insert("a", (5, 5, 0, 0))
