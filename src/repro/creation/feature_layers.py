"""Crowdsourced new feature layers on an existing HD map (Kim et al. [31]).

The existing map's lane geometry is accurate, so contributing vehicles can
localize *against the map* (lane-relative, centimetre-level) instead of
against raw GNSS (metre-level). New features detected during normal drives
are then registered in map coordinates with near-map accuracy — the paper's
centimetre-level layer enrichment "without extra cost". The layer is kept
separate from the base map, isolating its errors (the decoupling the paper
argues for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import RoadMarking
from repro.core.hdmap import HDMap
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.transform import SE2
from repro.sensors.camera import Camera
from repro.sensors.gnss import GnssSensor
from repro.sensors.base import SensorGrade
from repro.world.traffic import Trajectory


@dataclass
class LayerResult:
    """A fused feature layer with accuracy against ground truth."""

    positions: np.ndarray  # (K, 2)
    error: ErrorStats
    matched: int


class FeatureLayerMapper:
    """Builds a new point-feature layer from crowd drives.

    ``map_relative=True`` localizes contributors against the base map
    (lane-relative: the vehicle's lateral offset is observed by camera,
    its longitudinal position by odometry-corrected GNSS projected onto the
    lane). ``map_relative=False`` is the traditional baseline: raw GNSS
    pose, metre-level results.
    """

    def __init__(self, base_map: HDMap, map_relative: bool = True,
                 grade: SensorGrade = SensorGrade.AUTOMOTIVE,
                 lateral_obs_sigma: float = 0.05,
                 station_obs_sigma: float = 0.35,
                 feature_obs_sigma: float = 0.08,
                 cluster_radius: float = 1.5) -> None:
        self.base = base_map
        self.map_relative = map_relative
        self.gnss = GnssSensor(grade, rate_hz=2.0)
        self.lateral_obs_sigma = lateral_obs_sigma
        self.station_obs_sigma = station_obs_sigma
        self.feature_obs_sigma = feature_obs_sigma
        self.cluster_radius = cluster_radius

    # ------------------------------------------------------------------
    def _estimated_pose(self, true_pose: SE2, gnss_position: np.ndarray,
                        rng: np.random.Generator) -> SE2:
        if not self.map_relative:
            return SE2(float(gnss_position[0]), float(gnss_position[1]),
                       true_pose.theta + float(rng.normal(0, 0.01)))
        # Map-relative localization: the camera pins the lateral offset to
        # the mapped lane; odometry/map matching pins the station to within
        # station_obs_sigma. Model the resulting pose error directly.
        lane, _ = self.base.nearest_lane(true_pose.x, true_pose.y)
        s, d = lane.centerline.project((true_pose.x, true_pose.y))
        s_est = s + float(rng.normal(0.0, self.station_obs_sigma))
        d_est = d + float(rng.normal(0.0, self.lateral_obs_sigma))
        base = lane.centerline.point_at(s_est)
        normal = lane.centerline.normal_at(s_est)
        heading = lane.centerline.heading_at(s_est)
        position = base + d_est * normal
        return SE2(float(position[0]), float(position[1]),
                   heading + float(rng.normal(0, 0.005)))

    # ------------------------------------------------------------------
    def collect(self, reality: HDMap, trajectory: Trajectory,
                rng: np.random.Generator) -> List[np.ndarray]:
        """One vehicle's feature observations, in map coordinates."""
        fixes = self.gnss.measure(trajectory, rng)
        observations: List[np.ndarray] = []
        for fix in fixes:
            true_pose = trajectory.pose_at(fix.t)
            est_pose = self._estimated_pose(true_pose, fix.position, rng)
            # Detect road markings near the vehicle (the new layer).
            for marking in reality.markings():
                rel = marking.position - np.array([true_pose.x, true_pose.y])
                if float(np.hypot(*rel)) > 25.0:
                    continue
                if rng.uniform() > 0.8:
                    continue
                body = true_pose.inverse().apply(marking.position)
                body = body + rng.normal(0.0, self.feature_obs_sigma, size=2)
                observations.append(est_pose.apply(body))
        return observations

    # ------------------------------------------------------------------
    def fuse(self, all_observations: Sequence[np.ndarray],
             reality: HDMap) -> LayerResult:
        if not all_observations:
            return LayerResult(np.zeros((0, 2)),
                               error_stats([float("nan")]), 0)
        pts = np.array(all_observations)
        from repro.creation.crowdsource import _greedy_cluster

        clusters = _greedy_cluster(pts, self.cluster_radius)
        fused = [pts[m].mean(axis=0) for m in clusters if len(m) >= 3]
        fused_arr = np.array(fused) if fused else np.zeros((0, 2))
        truth = np.array([m.position for m in reality.markings()])
        errors = []
        for f in fused_arr:
            if truth.shape[0] == 0:
                break
            d = np.hypot(truth[:, 0] - f[0], truth[:, 1] - f[1])
            i = int(np.argmin(d))
            if d[i] <= self.cluster_radius * 2:
                errors.append(float(d[i]))
        if not errors:
            errors = [float("nan")]
        return LayerResult(positions=fused_arr, error=error_stats(errors),
                           matched=len(errors))
