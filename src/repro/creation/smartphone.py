"""Smartphone-based HD map building (Szabó et al. [34]).

Phone-grade GNSS and IMU are fused in a Kalman filter; a lane-detection
network (surrogate: the camera's lane observation) supplies lateral
corrections. The mapped lane centerline stays under the paper's ~3 m
despite multi-metre raw GNSS error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.hdmap import HDMap
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.polyline import Polyline
from repro.geometry.transform import SE2
from repro.localization.ekf import PoseEKF
from repro.sensors.camera import Camera
from repro.sensors.gnss import GnssSensor
from repro.sensors.imu import ImuSensor
from repro.sensors.base import SensorGrade
from repro.world.traffic import Trajectory


@dataclass
class SmartphoneResult:
    centerline: Optional[Polyline]
    error: ErrorStats
    raw_gnss_error: ErrorStats


class SmartphoneMapper:
    """Kalman GNSS+IMU fusion with camera lane-centre snapping."""

    def __init__(self, use_lane_detection: bool = True) -> None:
        self.gnss = GnssSensor(SensorGrade.SMARTPHONE, rate_hz=1.0)
        self.imu = ImuSensor(SensorGrade.SMARTPHONE, rate_hz=10.0)
        self.camera = Camera(lane_offset_sigma=0.12)
        self.use_lane_detection = use_lane_detection

    def run(self, reality: HDMap, trajectory: Trajectory,
            rng: np.random.Generator) -> SmartphoneResult:
        fixes = self.gnss.measure(trajectory, rng)
        readings = self.imu.measure(trajectory, rng)
        if not fixes or not readings:
            raise ValueError("trajectory too short")

        start = trajectory.pose_at(trajectory.start_time)
        ekf = PoseEKF(SE2(float(fixes[0].position[0]),
                          float(fixes[0].position[1]), start.theta),
                      sigma_xy=4.0, sigma_theta=0.2)
        speed = trajectory.samples[0].speed

        fix_iter = iter(fixes)
        next_fix = next(fix_iter, None)
        prev_fix = None
        mapped_points: List[np.ndarray] = []
        lane_offsets: List[float] = []
        prev_t = readings[0].t
        warmup_until = readings[0].t + 8.0  # let the filter converge first
        for reading in readings:
            dt = reading.t - prev_t
            prev_t = reading.t
            speed = max(0.0, speed + reading.accel * dt)
            ekf.predict(speed * dt, reading.yaw_rate * dt,
                        sigma_ds=0.1 * max(speed * dt, 0.05),
                        sigma_dtheta=0.02)
            while next_fix is not None and next_fix.t <= reading.t:
                # Offline mapping: no gating (a gate plus an unobserved
                # heading is a divergence spiral on phone-grade sensors).
                ekf.update_position(next_fix.position, next_fix.sigma,
                                    gate=None)
                if prev_fix is not None:
                    delta = next_fix.position - prev_fix.position
                    gap = float(np.hypot(*delta))
                    if gap > 8.0:
                        # Course over ground observes the heading, and the
                        # displacement over the fix interval re-anchors the
                        # integrated speed.
                        course = float(np.arctan2(delta[1], delta[0]))
                        ekf.update_heading(course, sigma=0.15, gate=None)
                        dt_fix = next_fix.t - prev_fix.t
                        if dt_fix > 0:
                            gnss_speed = gap / dt_fix
                            speed = 0.7 * speed + 0.3 * gnss_speed
                prev_fix = next_fix
                next_fix = next(fix_iter, None)
            true_pose = trajectory.pose_at(reading.t)
            offset = None
            if self.use_lane_detection:
                obs = self.camera.observe_lanes(reality, true_pose, rng,
                                                t=reading.t)
                if obs is not None:
                    offset = obs.lane_centre_offset
            # Map point: the estimated position of the *lane centre* the
            # phone is driving. ``offset`` is the vehicle's offset from the
            # lane centre (left positive), so the centre sits at
            # pose - offset * left_normal.
            pose = ekf.pose
            if reading.t < warmup_until:
                continue
            if offset is not None:
                normal = np.array([-np.sin(pose.theta), np.cos(pose.theta)])
                mapped_points.append(
                    np.array([pose.x, pose.y]) - offset * normal)
                lane_offsets.append(offset)
            elif not self.use_lane_detection:
                mapped_points.append(np.array([pose.x, pose.y]))

        if len(mapped_points) < 2:
            raise ValueError("no mapped points produced")
        centerline = _smooth_polyline(np.array(mapped_points), window=15)

        true_lines = [lane.centerline for lane in reality.lanes()]
        errors = [min(line.distance_to(p) for line in true_lines)
                  for p in centerline.resample(20.0).points]
        raw_errors = []
        for fix in fixes:
            true_pose = trajectory.pose_at(fix.t)
            raw_errors.append(float(np.hypot(fix.position[0] - true_pose.x,
                                             fix.position[1] - true_pose.y)))
        return SmartphoneResult(
            centerline=centerline,
            error=error_stats(errors),
            raw_gnss_error=error_stats(raw_errors),
        )


def _smooth_polyline(points: np.ndarray, window: int = 15) -> Polyline:
    if points.shape[0] <= window:
        return Polyline(points)
    kernel = np.ones(window) / window
    x = np.convolve(points[:, 0], kernel, mode="valid")
    y = np.convolve(points[:, 1], kernel, mode="valid")
    return Polyline(np.stack([x, y], axis=1))
