"""OSM-style ingestion (the Zhou et al. [38] bootstrap path)."""

import numpy as np
import pytest

from repro.core import Severity, validate_map
from repro.errors import MapModelError
from repro.geometry.geodesy import LocalProjector
from repro.world.osm import OsmDocument, _parse_maxspeed, import_osm

LAT0, LON0 = 33.97, -117.33


def _offset(metres_east: float, metres_north: float):
    """lat/lon ``metres`` away from the anchor (small-angle)."""
    proj = LocalProjector(LAT0, LON0)
    lat, lon = proj.to_geographic(np.array([[metres_east, metres_north]]))
    return float(lat[0]), float(lon[0])


@pytest.fixture
def crossroads_doc():
    """Two perpendicular streets crossing at a shared node."""
    nodes = {
        1: _offset(-400.0, 0.0),
        2: _offset(0.0, 0.0),  # shared intersection node
        3: _offset(400.0, 0.0),
        4: _offset(0.0, -400.0),
        5: _offset(0.0, 400.0),
    }
    ways = [
        {"nodes": [1, 2], "tags": {"highway": "secondary", "lanes": "2"}},
        {"nodes": [2, 3], "tags": {"highway": "secondary", "lanes": "2"}},
        {"nodes": [4, 2], "tags": {"highway": "residential",
                                   "maxspeed": "30"}},
        {"nodes": [2, 5], "tags": {"highway": "residential",
                                   "maxspeed": "30"}},
        {"nodes": [1, 3], "tags": {"highway": "footway"}},  # not drivable
    ]
    return OsmDocument.from_dict({"nodes": nodes, "ways": ways})


class TestMaxspeedParsing:
    def test_kmh_default(self):
        assert _parse_maxspeed("50") == pytest.approx(13.89, abs=0.01)

    def test_kmh_suffix(self):
        assert _parse_maxspeed("50 km/h") == pytest.approx(13.89, abs=0.01)

    def test_mph(self):
        assert _parse_maxspeed("30 mph") == pytest.approx(13.41, abs=0.01)

    def test_garbage_is_none(self):
        assert _parse_maxspeed("fast") is None
        assert _parse_maxspeed(None) is None


class TestImport:
    def test_import_builds_valid_map(self, crossroads_doc):
        hdmap = import_osm(crossroads_doc)
        errors = [i for i in validate_map(hdmap)
                  if i.severity is Severity.ERROR]
        assert errors == []
        assert len(list(hdmap.lanes())) > 4

    def test_footway_skipped(self, crossroads_doc):
        hdmap = import_osm(crossroads_doc)
        # The direct 1->3 footway must not exist as a drivable 800 m lane
        # crossing the intersection.
        for lane in hdmap.lanes():
            assert lane.length < 500.0

    def test_maxspeed_respected(self, crossroads_doc):
        hdmap = import_osm(crossroads_doc)
        limits = {round(l.speed_limit, 2) for l in hdmap.lanes()}
        assert round(30 / 3.6, 2) in limits  # residential from maxspeed tag

    def test_intersection_is_routable(self, crossroads_doc):
        import networkx as nx

        from repro.planning import LaneRouter

        hdmap = import_osm(crossroads_doc)
        graph = hdmap.lane_graph()
        assert nx.number_weakly_connected_components(graph) == 1
        router = LaneRouter(hdmap)
        lanes = [l for l in hdmap.lanes() if l.length > 100]
        # Route from the west arm to the north arm (requires the turn
        # connector through the intersection).
        west = min(lanes, key=lambda l: l.centerline.start[0])
        north = max(lanes, key=lambda l: l.centerline.end[1])
        result = router.route_astar(west.id, north.id)
        assert result.n_lanes >= 3

    def test_oneway_has_no_backward_lanes(self):
        nodes = {1: _offset(0, 0), 2: _offset(300, 0)}
        ways = [{"nodes": [1, 2], "tags": {"highway": "primary",
                                           "oneway": "yes", "lanes": "2"}}]
        hdmap = import_osm(OsmDocument.from_dict({"nodes": nodes,
                                                  "ways": ways}))
        segment = next(iter(hdmap.segments()))
        assert len(segment.forward_lanes) == 2
        assert len(segment.backward_lanes) == 0

    def test_empty_document_raises(self):
        with pytest.raises(MapModelError):
            import_osm(OsmDocument(nodes={}, ways=[]))

    def test_no_drivable_ways_raises(self):
        nodes = {1: _offset(0, 0), 2: _offset(100, 0)}
        ways = [{"nodes": [1, 2], "tags": {"highway": "footway"}}]
        with pytest.raises(MapModelError):
            import_osm(OsmDocument.from_dict({"nodes": nodes, "ways": ways}))

    def test_zhou_pipeline_on_imported_map(self, crossroads_doc, rng):
        """The lane-graph builder runs on the imported skeleton: OSM in,
        lane-level map out — the full Zhou et al. flow."""
        from repro.creation import LaneGraphBuilder
        from repro.world import drive_lane_sequence

        hdmap = import_osm(crossroads_doc)
        builder = LaneGraphBuilder(hdmap)
        lanes = [l for l in hdmap.lanes() if l.length > 100]
        frames = []
        for lane in lanes[:4]:
            traj = drive_lane_sequence(hdmap, [lane.id], rng=rng)
            frames.extend(builder.collect(traj, rng, stride_s=2.0))
        result = builder.build(frames)
        assert result.lanes
        assert result.centerline_error.mean < 1.5
