"""Frenet (station/lateral) frames anchored to a reference polyline.

Lane-level planners in the survey (Jian et al. [52]) generate candidate
paths in the lane coordinate system; this module provides the Cartesian <->
Frenet conversion they need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.polyline import Polyline


@dataclass(frozen=True)
class FrenetPoint:
    """A point in Frenet coordinates: station ``s`` and lateral offset ``d``."""

    s: float
    d: float


class FrenetFrame:
    """Cartesian <-> Frenet conversion along a reference polyline."""

    def __init__(self, reference: Polyline) -> None:
        self._ref = reference

    @property
    def reference(self) -> Polyline:
        return self._ref

    @property
    def length(self) -> float:
        return self._ref.length

    def to_frenet(self, point: Sequence[float]) -> FrenetPoint:
        s, d = self._ref.project(point)
        return FrenetPoint(s=s, d=d)

    def to_frenet_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized conversion of (P, 2) Cartesian points to Frenet.

        Returns a (P, 2) array of ``[s, d]`` rows (batched projection, so
        identical to per-point :meth:`to_frenet`).
        """
        stations, laterals = self._ref.project_batch(points)
        return np.stack([stations, laterals], axis=1)

    def to_cartesian(self, s: float, d: float) -> np.ndarray:
        base = self._ref.point_at(s)
        normal = self._ref.normal_at(s)
        return base + d * normal

    def path_to_cartesian(self, stations: np.ndarray, laterals: np.ndarray) -> np.ndarray:
        """Vectorized conversion of a Frenet path to Cartesian points."""
        stations = np.asarray(stations, dtype=float)
        laterals = np.asarray(laterals, dtype=float)
        if stations.shape != laterals.shape:
            raise ValueError("stations and laterals must have the same shape")
        s_flat = stations.ravel()
        d_flat = laterals.ravel()
        # Elementwise twin of to_cartesian() per row: base + d * normal.
        return (self._ref.points_at(s_flat)
                + d_flat[:, None] * self._ref.normals_at(s_flat))

    def heading_at(self, s: float) -> float:
        return self._ref.heading_at(s)

    def curvature_at(self, s: float) -> float:
        return self._ref.curvature_at(s)
