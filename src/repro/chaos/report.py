"""`ChaosReport`: invariant certification over a chaos run.

The harness runs a faulted workload; this module decides whether the
stack *degraded* or *broke*. Five invariants must hold under every fault
class, checked from the run's observable surfaces — the
:mod:`repro.obs` event stream, the metrics counters, and the
authoritative change log — never from harness-private bookkeeping:

1. **No lost acknowledged observations** — every observation the bus
   accepted (``ingest.bus.published``) is accounted for: processed at
   least once, shed with its counter bumped, or dead-lettered with a
   ``batch_dead_lettered`` event and a journal entry. The bus must also
   drain completely (nothing pending, retrying, or leased). Holds
   because leases are redelivered on expiry and retries are bounded into
   the DLQ — there is no path that silently discards an accepted
   observation.

2. **No duplicate published patches** — the change log never records the
   same removal twice nor two additions of the same physical landmark.
   Holds because publication is exactly-once per idempotency key and
   near-miss additions are conflated by radius before ingest.

3. **Version monotonicity** — the change-log versions are non-decreasing
   in append order, contiguous from the base version, and end at the
   server's current version; the serve phase never observes a version
   regression. Holds because every patch applies atomically under the
   distribution server's single lock.

4. **Bounded freshness lag** — the enqueue→servable lag histogram's
   maximum stays under the fault class's bound. Holds because
   backpressure (bounded queues + shed-oldest) prevents unbounded
   queueing and retry backoff is capped by the attempt budget.

5. **Zero constraint violations served** — a full
   :class:`~repro.core.validation.ConstraintEngine` scan of the final
   served map finds no ERROR-severity violation, and every injected
   malformed patch is present in the quarantine store with a
   ``patch_quarantined`` event. Holds because the verify gate sits
   between fuse and publish on *both* entry paths (pipeline stage and
   publisher backstop), so a corrupt-geometry patch has no route into
   the database. An invariant with zero samples (no malformed patches
   injected *and* nothing scanned) renders as vacuous, never as a
   misleading PASS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class InvariantResult:
    name: str
    ok: bool
    detail: str
    #: How many samples the verdict rests on (scanned elements, injected
    #: faults, published patches …). ``None`` means the invariant
    #: predates sample accounting; 0 means the invariant class was never
    #: exercised this run — it renders as ``ok (vacuous)`` rather than a
    #: plain PASS, so an unexercised gate can't masquerade as a green one.
    samples: Optional[int] = None

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "VIOLATED"
        if self.ok and self.samples == 0:
            verdict = "ok (vacuous)"
        return f"[{verdict}] {self.name}: {self.detail}"


@dataclass
class ChaosReport:
    """Outcome of one harness run: fired faults + invariant verdicts."""

    fault_class: str
    plan: str
    fired: Dict[str, int] = field(default_factory=dict)
    invariants: List[InvariantResult] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    serve_stats: Optional[Dict[str, object]] = None
    elapsed_s: float = 0.0

    def certify(self) -> bool:
        """True iff every invariant held."""
        return all(result.ok for result in self.invariants)

    def violations(self) -> List[InvariantResult]:
        return [r for r in self.invariants if not r.ok]

    def format(self) -> str:
        lines = [f"chaos[{self.fault_class}] plan: {self.plan}"]
        if self.fired:
            fired = ", ".join(f"{k}={v}" for k, v in sorted(self.fired.items()))
            lines.append(f"  fired: {fired}")
        if self.stats.get("poisoned_traces") is not None:
            lines.append(
                f"  telemetry: {self.stats['poisoned_traces']} poisoned "
                f"trace(s) (fault_injected landed inside them), "
                f"{self.stats.get('harvested_spans', 0)} harvested "
                f"span(s)")
        verify = self.stats.get("verify")
        if isinstance(verify, dict):
            checked = int(verify.get("checked", 0))
            if checked > 0:
                quarantined = int(verify.get("quarantined", 0))
                lines.append(
                    f"  verify: {checked} patch(es) checked, "
                    f"{quarantined} quarantined "
                    f"({quarantined / checked * 100.0:.0f}%), "
                    f"{verify.get('violations', 0)} violation(s)")
            else:
                lines.append("  verify: gate unexercised (0 patches "
                             "checked)")
        for result in self.invariants:
            lines.append(f"  {result}")
        return "\n".join(lines)


def _count_events(events: List[Dict[str, object]], name: str) -> int:
    return sum(1 for e in events if e.get("event") == name)


def check_invariants(pipe, server, base_version: int,
                     events: List[Dict[str, object]],
                     freshness_bound_s: float = 30.0,
                     crash_fired: int = 0,
                     serve_version_regressions: int = 0,
                     malformed_keys: Optional[List[str]] = None
                     ) -> List[InvariantResult]:
    """Evaluate the five invariants against one drained pipeline run.

    ``malformed_keys`` are the idempotency keys of corrupt-geometry
    patches the harness injected upstream of the verify gate; each must
    turn up in the quarantine store, never in the served map.

    ``pipe`` is the :class:`~repro.ingest.pipeline.IngestPipeline` after
    ``stop()``, ``server`` the real (unproxied)
    :class:`~repro.update.distribution.MapDistributionServer`,
    ``base_version`` the server version before the run, ``events`` the
    structured event stream captured during it.
    """
    out: List[InvariantResult] = []

    # 1 -- no lost acknowledged observations --------------------------
    published = pipe.bus.published.value
    processed = pipe.metrics.observations_processed.value
    shed = pipe.bus.shed_oldest.value
    dead_batches = pipe.dead_letters.batches()
    dead = sum(len(batch) for batch, _ in dead_batches)
    drained = pipe.bus.is_drained()
    dl_events = _count_events(events, "batch_dead_lettered")
    restart_events = _count_events(events, "worker_restarted")
    problems = []
    if not drained:
        problems.append("bus not drained")
    if processed + shed + dead < published:
        problems.append(
            f"{published - processed - shed - dead} observation(s) "
            f"unaccounted")
    if dl_events != len(dead_batches):
        problems.append(f"{len(dead_batches)} dead-lettered batch(es) but "
                        f"{dl_events} batch_dead_lettered event(s)")
    if crash_fired > 0 and restart_events < 1:
        problems.append(f"{crash_fired} crash(es) injected but no "
                        f"worker_restarted event")
    out.append(InvariantResult(
        "no_lost_acked_observations",
        not problems,
        "; ".join(problems) if problems else
        f"published={published} processed={processed} shed={shed} "
        f"dead={dead} restarts={restart_events}"))

    # 2 -- no duplicate published patches -----------------------------
    from repro.core.changes import ChangeType
    changes = server.changes_since(base_version)
    removed_seen: Dict[object, int] = {}
    for change in changes:
        if change.change_type is ChangeType.REMOVED:
            removed_seen[change.element_id] = \
                removed_seen.get(change.element_id, 0) + 1
    dup_removed = {eid: n for eid, n in removed_seen.items() if n > 1}
    radius = pipe.publisher.add_conflation_radius
    added = [c.position for c in changes
             if c.change_type is ChangeType.ADDED]
    dup_added = 0
    for i in range(len(added)):
        for j in range(i + 1, len(added)):
            if math.hypot(added[i][0] - added[j][0],
                          added[i][1] - added[j][1]) <= radius:
                dup_added += 1
    problems = []
    if dup_removed:
        problems.append(f"elements removed more than once: {dup_removed}")
    if dup_added:
        problems.append(f"{dup_added} addition pair(s) within the "
                        f"{radius:g} m conflation radius")
    out.append(InvariantResult(
        "no_duplicate_published_patches",
        not problems,
        "; ".join(problems) if problems else
        f"{len(changes)} change(s), "
        f"{pipe.metrics.patches_duplicate.value} redelivery/conflation "
        f"suppression(s)"))

    # 3 -- version monotonicity ---------------------------------------
    entries = server.db.log.entries
    versions = [v for v, _ in entries if v > base_version]
    problems = []
    if any(b < a for a, b in zip(versions, versions[1:])):
        problems.append("change-log versions regress in append order")
    expected = set(range(base_version + 1, server.version + 1))
    if set(versions) != expected:
        problems.append(
            f"versions not contiguous: saw {len(set(versions))} distinct, "
            f"expected {len(expected)} "
            f"({base_version + 1}..{server.version})")
    if serve_version_regressions:
        problems.append(f"{serve_version_regressions} serve-side version "
                        f"regression(s)")
    out.append(InvariantResult(
        "version_monotonicity",
        not problems,
        "; ".join(problems) if problems else
        f"versions {base_version + 1}..{server.version} contiguous, "
        f"non-decreasing"))

    # 4 -- bounded freshness lag --------------------------------------
    snap = pipe.metrics.freshness.snapshot()
    count = int(snap.get("count", 0))
    max_s = float(snap.get("max_s", 0.0))
    if count == 0:
        out.append(InvariantResult(
            "freshness_lag_bounded", True,
            "no patches published (vacuous)"))
    else:
        ok = max_s <= freshness_bound_s
        out.append(InvariantResult(
            "freshness_lag_bounded", ok,
            f"max lag {max_s * 1e3:.1f} ms "
            f"{'<=' if ok else '>'} bound {freshness_bound_s * 1e3:.0f} ms "
            f"over {count} patch(es)", samples=count))

    # 5 -- zero constraint violations served --------------------------
    out.append(check_served_map_clean(
        server.snapshot(),
        gate=getattr(pipe, "verify_gate", None),
        events=events,
        malformed_keys=malformed_keys))
    return out


def check_served_map_clean(served_map, gate=None,
                           events: Optional[List[Dict[str, object]]] = None,
                           malformed_keys: Optional[List[str]] = None
                           ) -> InvariantResult:
    """The fifth invariant: **zero constraint violations served**.

    A full :class:`~repro.core.validation.ConstraintEngine` scan of the
    served map must find no ERROR; when the harness injected malformed
    patches (``malformed_keys``), every one must appear in the
    quarantine store with a matching ``patch_quarantined`` event.
    ``samples`` is the injected-malformed count when known (so a run
    that never exercised the gate renders vacuous), else the number of
    elements scanned.
    """
    from repro.core.validation import ConstraintEngine

    report = ConstraintEngine().check_map(served_map)
    problems = []
    if report.errors:
        worst = "; ".join(str(v) for v in report.errors[:3])
        problems.append(f"{len(report.errors)} constraint error(s) in the "
                        f"served map: {worst}")
    quarantined = 0
    if gate is not None:
        store = gate.quarantine
        quarantined = len(store)
        missing = [key for key in (malformed_keys or []) if key not in store]
        if missing:
            problems.append(f"{len(missing)} injected malformed patch(es) "
                            f"missing from quarantine: {missing[:3]}")
        if events is not None:
            q_events = _count_events(events, "patch_quarantined")
            if q_events < quarantined:
                problems.append(f"{quarantined} quarantined patch(es) but "
                                f"only {q_events} patch_quarantined "
                                f"event(s)")
    elif malformed_keys:
        problems.append(f"{len(malformed_keys)} malformed patch(es) "
                        f"injected but the pipeline has no verify gate")
    # Sample basis: injected malformed patches when the harness injected
    # any (the gate was directly exercised), else the elements scanned —
    # only a run that neither injected nor scanned anything is vacuous.
    samples = len(malformed_keys) if malformed_keys else report.checked
    if problems:
        detail = "; ".join(problems)
    elif malformed_keys:
        detail = (f"served map clean ({report.checked} element(s) "
                  f"scanned), {quarantined} quarantined, "
                  f"{len(malformed_keys)} injected malformed")
    else:
        detail = (f"served map clean ({report.checked} element(s) "
                  f"scanned), no malformed injection this run")
    return InvariantResult("zero_constraint_violations_served",
                           not problems, detail, samples=samples)
