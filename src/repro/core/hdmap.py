"""The layered HD-map container.

``HDMap`` realizes the Lanelet2 [20] three-layer architecture over one
element store:

- **physical layer** — observable elements (boundaries, signs, lights,
  poles, stop lines, crosswalks, markings);
- **relational layer** — lanes and road segments binding physical elements
  together, plus regulatory rules;
- **topological layer** — lane-to-lane connectivity, *derived* from the
  relational layer's geometry exactly as Lanelet2 prescribes ("implicitly
  inferred from spatial relationships").

Road segments are HiDAM [21] lane bundles, keeping node-edge compatibility
with traditional routing while exposing per-lane detail.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type, TypeVar

import numpy as np

from repro.core.elements import (
    KIND_OF_TYPE,
    Crosswalk,
    Kind,
    Lane,
    LaneBoundary,
    MapElement,
    Node,
    PointLandmark,
    Pole,
    RoadMarking,
    RoadSegment,
    StopLine,
    TrafficLight,
    TrafficSign,
)
from repro.core.ids import ElementId, IdAllocator
from repro.core.regulatory import RegulatoryElement
from repro.errors import MapModelError, UnknownElementError
from repro.geometry.index import GridIndex
from repro.geometry.polyline import Polyline

E = TypeVar("E", bound=MapElement)

# Ordered tuples (not sets): iteration order must be process-deterministic.
PHYSICAL_KINDS = (Kind.BOUNDARY, Kind.SIGN, Kind.LIGHT, Kind.POLE,
                  Kind.STOPLINE, Kind.CROSSWALK, Kind.MARKING)
RELATIONAL_KINDS = (Kind.LANE, Kind.SEGMENT, Kind.REGULATORY)

# Lane endpoints closer than this are considered connected when deriving
# the topological layer.
CONNECTION_TOLERANCE = 0.75


class HDMap:
    """A versioned, spatially indexed, layered HD map."""

    def __init__(self, name: str = "map", index_cell_size: float = 100.0) -> None:
        self.name = name
        self.version = 0
        # Bumped on every structural edit (add/remove/replace), including
        # ones that do not advance ``version``; sensor-side geometry caches
        # key on it to invalidate when the map changes underneath them.
        self.mutation_count = 0
        self._elements: Dict[ElementId, MapElement] = {}
        self._regulatory: Dict[ElementId, RegulatoryElement] = {}
        self._by_kind: Dict[str, Dict[ElementId, MapElement]] = {}
        self._index: GridIndex[ElementId] = GridIndex(index_cell_size)
        self._ids = IdAllocator()
        self._topology_dirty = True
        self._successors: Dict[ElementId, List[ElementId]] = {}
        self._predecessors: Dict[ElementId, List[ElementId]] = {}
        self._left_neighbor: Dict[ElementId, ElementId] = {}
        self._right_neighbor: Dict[ElementId, ElementId] = {}

    # ------------------------------------------------------------------
    # Element lifecycle
    # ------------------------------------------------------------------
    def new_id(self, kind: str) -> ElementId:
        return self._ids.allocate(kind)

    def add(self, element: MapElement) -> ElementId:
        """Insert an element (its id must be unused)."""
        if element.id is None:
            raise MapModelError("element has no id; use new_id() first")
        if element.id in self._elements or element.id in self._regulatory:
            raise MapModelError(f"duplicate element id {element.id}")
        if isinstance(element, RegulatoryElement):
            self._regulatory[element.id] = element
        else:
            self._elements[element.id] = element
            self._index.insert(element.id, element.bounds())
        self._by_kind.setdefault(element.id.kind, {})[element.id] = element
        self._ids.reserve(element.id)
        self.mutation_count += 1
        if element.id.kind in (Kind.LANE, Kind.SEGMENT):
            self._topology_dirty = True
        return element.id

    def create(self, element_type: Type[E], **kwargs) -> E:
        """Allocate an id, construct, insert, and return a new element."""
        kind = KIND_OF_TYPE.get(element_type)
        if kind is None:
            raise MapModelError(f"unknown element type {element_type.__name__}")
        element = element_type(id=self.new_id(kind), **kwargs)
        self.add(element)
        return element

    def create_regulatory(self, **kwargs) -> RegulatoryElement:
        rule = RegulatoryElement(id=self.new_id(Kind.REGULATORY), **kwargs)
        self.add(rule)
        return rule

    def remove(self, element_id: ElementId) -> MapElement:
        """Remove and return an element."""
        if element_id in self._regulatory:
            element: MapElement = self._regulatory.pop(element_id)  # type: ignore[assignment]
        elif element_id in self._elements:
            element = self._elements.pop(element_id)
            self._index.remove(element_id)
        else:
            raise UnknownElementError(element_id)
        self._by_kind.get(element_id.kind, {}).pop(element_id, None)
        self.mutation_count += 1
        if element_id.kind in (Kind.LANE, Kind.SEGMENT):
            self._topology_dirty = True
        return element

    def replace(self, element: MapElement) -> None:
        """Replace an existing element in place (same id, new content)."""
        if element.id in self._regulatory and isinstance(element, RegulatoryElement):
            self._regulatory[element.id] = element
        elif element.id in self._elements:
            self._elements[element.id] = element
            self._index.insert(element.id, element.bounds())
        else:
            raise UnknownElementError(element.id)
        self._by_kind.setdefault(element.id.kind, {})[element.id] = element
        self.mutation_count += 1
        if element.id.kind in (Kind.LANE, Kind.SEGMENT):
            self._topology_dirty = True

    def get(self, element_id: ElementId) -> MapElement:
        element = self._elements.get(element_id) or self._regulatory.get(element_id)
        if element is None:
            raise UnknownElementError(element_id)
        return element

    def __contains__(self, element_id: ElementId) -> bool:
        return element_id in self._elements or element_id in self._regulatory

    def __len__(self) -> int:
        return len(self._elements) + len(self._regulatory)

    # ------------------------------------------------------------------
    # Typed iteration (the layer views)
    # ------------------------------------------------------------------
    def _of_kind(self, kind: str) -> Iterator[MapElement]:
        return iter(list(self._by_kind.get(kind, {}).values()))

    def lanes(self) -> Iterator[Lane]:
        return self._of_kind(Kind.LANE)  # type: ignore[return-value]

    def boundaries(self) -> Iterator[LaneBoundary]:
        return self._of_kind(Kind.BOUNDARY)  # type: ignore[return-value]

    def segments(self) -> Iterator[RoadSegment]:
        return self._of_kind(Kind.SEGMENT)  # type: ignore[return-value]

    def nodes(self) -> Iterator[Node]:
        return self._of_kind(Kind.NODE)  # type: ignore[return-value]

    def signs(self) -> Iterator[TrafficSign]:
        return self._of_kind(Kind.SIGN)  # type: ignore[return-value]

    def lights(self) -> Iterator[TrafficLight]:
        return self._of_kind(Kind.LIGHT)  # type: ignore[return-value]

    def poles(self) -> Iterator[Pole]:
        return self._of_kind(Kind.POLE)  # type: ignore[return-value]

    def stop_lines(self) -> Iterator[StopLine]:
        return self._of_kind(Kind.STOPLINE)  # type: ignore[return-value]

    def crosswalks(self) -> Iterator[Crosswalk]:
        return self._of_kind(Kind.CROSSWALK)  # type: ignore[return-value]

    def markings(self) -> Iterator[RoadMarking]:
        return self._of_kind(Kind.MARKING)  # type: ignore[return-value]

    def regulatory_elements(self) -> Iterator[RegulatoryElement]:
        return iter(list(self._regulatory.values()))

    def landmarks(self) -> Iterator[PointLandmark]:
        """All point landmarks usable for localization (signs, lights, poles)."""
        for kind in (Kind.SIGN, Kind.LIGHT, Kind.POLE, Kind.MARKING):
            yield from self._of_kind(kind)  # type: ignore[misc]

    def physical_elements(self) -> Iterator[MapElement]:
        for kind in PHYSICAL_KINDS:
            yield from self._of_kind(kind)

    def elements(self) -> Iterator[MapElement]:
        yield from list(self._elements.values())
        yield from list(self._regulatory.values())

    # ------------------------------------------------------------------
    # Spatial queries
    # ------------------------------------------------------------------
    def elements_in_box(self, bounds: Tuple[float, float, float, float]) -> List[MapElement]:
        return [self._elements[eid] for eid in self._index.query_box(bounds)]

    def elements_in_radius(self, x: float, y: float, radius: float,
                           kind: Optional[str] = None) -> List[MapElement]:
        """Elements whose bounds intersect the circle, optionally one kind."""
        hits = []
        for eid in self._index.query_radius(x, y, radius):
            if kind is not None and eid.kind != kind:
                continue
            hits.append(self._elements[eid])
        return hits

    def landmarks_in_radius(self, x: float, y: float, radius: float) -> List[PointLandmark]:
        """Point landmarks truly within ``radius`` of (x, y)."""
        out = []
        centre = np.array([x, y])
        for eid in self._index.query_radius(x, y, radius):
            element = self._elements[eid]
            if isinstance(element, PointLandmark):
                if float(np.hypot(*(element.position - centre))) <= radius:
                    out.append(element)
        return out

    def nearest_lane(self, x: float, y: float) -> Tuple[Lane, float]:
        """Nearest lane by true centerline distance."""
        point = np.array([x, y])

        def dist(eid: ElementId) -> float:
            element = self._elements[eid]
            if not isinstance(element, Lane):
                return float("inf")
            return element.centerline.distance_to(point)

        if not self._by_kind.get(Kind.LANE):
            raise MapModelError("map has no lanes")
        eid, d = self._index.nearest(x, y, dist)
        lane = self._elements[eid]
        assert isinstance(lane, Lane)
        return lane, d

    def lanes_containing(self, x: float, y: float) -> List[Lane]:
        point = np.array([x, y])
        out = []
        for eid in self._index.query_point(x, y):
            element = self._elements[eid]
            if isinstance(element, Lane) and element.contains_point(point):
                out.append(element)
        return out

    def bounds(self) -> Tuple[float, float, float, float]:
        """Bounding box of every spatial element."""
        if not self._elements:
            raise MapModelError("empty map has no bounds")
        boxes = np.array([e.bounds() for e in self._elements.values()])
        return (
            float(boxes[:, 0].min()),
            float(boxes[:, 1].min()),
            float(boxes[:, 2].max()),
            float(boxes[:, 3].max()),
        )

    # ------------------------------------------------------------------
    # Topological layer (derived)
    # ------------------------------------------------------------------
    def _rebuild_topology(self) -> None:
        lanes = [e for e in self._by_kind.get(Kind.LANE, {}).values()
                 if isinstance(e, Lane)]
        self._successors = {lane.id: [] for lane in lanes}
        self._predecessors = {lane.id: [] for lane in lanes}
        self._left_neighbor = {}
        self._right_neighbor = {}

        # Endpoint matching: lane A -> lane B when A's end touches B's start.
        start_index: GridIndex[ElementId] = GridIndex(max(CONNECTION_TOLERANCE * 4, 10.0))
        for lane in lanes:
            sx, sy = lane.centerline.start
            start_index.insert(lane.id, (sx, sy, sx, sy))
        for lane in lanes:
            ex, ey = lane.centerline.end
            for other_id in start_index.query_radius(float(ex), float(ey),
                                                     CONNECTION_TOLERANCE):
                if other_id == lane.id:
                    continue
                other = self._elements[other_id]
                assert isinstance(other, Lane)
                gap = float(np.hypot(*(other.centerline.start - lane.centerline.end)))
                if gap <= CONNECTION_TOLERANCE:
                    self._successors[lane.id].append(other_id)
                    self._predecessors[other_id].append(lane.id)

        # Lateral adjacency within each segment's ordered bundle.
        for segment in self._by_kind.get(Kind.SEGMENT, {}).values():
            if not isinstance(segment, RoadSegment):
                continue
            for ordered in (segment.forward_lanes, segment.backward_lanes):
                for left_id, right_id in zip(ordered, ordered[1:]):
                    if left_id in self._successors and right_id in self._successors:
                        self._right_neighbor[left_id] = right_id
                        self._left_neighbor[right_id] = left_id
        self._topology_dirty = False

    def _topology(self) -> None:
        if self._topology_dirty:
            self._rebuild_topology()

    def successors(self, lane_id: ElementId) -> List[ElementId]:
        self._topology()
        if lane_id not in self._successors:
            raise UnknownElementError(lane_id)
        return list(self._successors[lane_id])

    def predecessors(self, lane_id: ElementId) -> List[ElementId]:
        self._topology()
        if lane_id not in self._predecessors:
            raise UnknownElementError(lane_id)
        return list(self._predecessors[lane_id])

    def left_neighbor(self, lane_id: ElementId) -> Optional[ElementId]:
        self._topology()
        return self._left_neighbor.get(lane_id)

    def right_neighbor(self, lane_id: ElementId) -> Optional[ElementId]:
        self._topology()
        return self._right_neighbor.get(lane_id)

    def lane_graph(self):
        """The topological layer as a ``networkx.DiGraph`` over lane ids.

        Edge attribute ``length`` is the *successor* lane's length for
        follow edges, and a configured lane-change cost for adjacency edges
        (attribute ``move`` is ``"follow"`` or ``"change"``).
        """
        import networkx as nx

        self._topology()
        graph = nx.DiGraph()
        for lane in self.lanes():
            graph.add_node(lane.id, length=lane.length)
        for lane_id, succs in self._successors.items():
            for succ in succs:
                succ_lane = self._elements[succ]
                assert isinstance(succ_lane, Lane)
                graph.add_edge(lane_id, succ, length=succ_lane.length, move="follow")
        # Lane changes cost a nominal manoeuvre length.
        change_cost = 30.0
        for left_id, right_id in self._right_neighbor.items():
            graph.add_edge(left_id, right_id, length=change_cost, move="change")
            graph.add_edge(right_id, left_id, length=change_cost, move="change")
        return graph

    # ------------------------------------------------------------------
    # Regulatory queries
    # ------------------------------------------------------------------
    def rules_for_lane(self, lane_id: ElementId) -> List[RegulatoryElement]:
        return [r for r in self._regulatory.values() if lane_id in r.lanes]

    def effective_speed_limit(self, lane_id: ElementId) -> float:
        """Lane's own limit unless a regulatory element tightens it."""
        lane = self.get(lane_id)
        assert isinstance(lane, Lane)
        limit = lane.speed_limit
        from repro.core.regulatory import RuleType

        for rule in self.rules_for_lane(lane_id):
            if rule.rule_type is RuleType.SPEED_LIMIT and rule.value is not None:
                limit = min(limit, rule.value)
        return limit

    # ------------------------------------------------------------------
    # Bulk stats & copy
    # ------------------------------------------------------------------
    def counts_by_kind(self) -> Dict[str, int]:
        return {kind: len(members) for kind, members in sorted(self._by_kind.items())
                if members}

    def total_lane_length(self) -> float:
        return float(sum(lane.length for lane in self.lanes()))

    def copy(self, name: Optional[str] = None) -> "HDMap":
        """Deep-enough copy: new container, shared immutable geometry."""
        import copy as _copy

        clone = HDMap(name or f"{self.name}-copy")
        clone.version = self.version
        for element in self._elements.values():
            clone.add(_copy.copy(element))
        for rule in self._regulatory.values():
            clone.add(_copy.copy(rule))
        return clone

    def __repr__(self) -> str:
        return (f"HDMap({self.name!r}, v{self.version}, "
                f"{len(self._elements)} elements, "
                f"{len(self._regulatory)} rules)")
