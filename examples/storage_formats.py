"""Storage spectrum: one city, four representations.

Reproduces the survey's storage discussion: the point-cloud map vs GeoJSON
vs the compact binary vector codec (lossless and simplified), with the
per-mile accounting the papers quote — then proves the smallest form is
still a *working* map (routing + localization queries).

Run:  python examples/storage_formats.py
"""

import numpy as np

from repro import LaneRouter, generate_grid_city
from repro.storage import decode_map, encode_map, storage_report


def fmt(n_bytes: float) -> str:
    if n_bytes >= 1e6:
        return f"{n_bytes / 1e6:7.2f} MB"
    return f"{n_bytes / 1e3:7.1f} KB"


def main() -> None:
    rng = np.random.default_rng(99)
    city = generate_grid_city(rng, blocks_x=5, blocks_y=4, block_size=220.0)
    report = storage_report(city, rng)

    print(f"map: {city.name}, {report.road_miles:.1f} road-miles, "
          f"{len(city)} elements\n")
    print("representation          total        per mile")
    rows = [
        ("point-cloud map", report.pointcloud_bytes,
         report.pointcloud_per_mile),
        ("GeoJSON vectors", report.geojson_bytes, report.geojson_per_mile),
        ("binary vectors", report.binary_bytes, report.binary_per_mile),
        ("binary + simplify", report.binary_simplified_bytes,
         report.binary_simplified_per_mile),
    ]
    for name, total, per_mile in rows:
        print(f"{name:22}{fmt(total)}   {fmt(per_mile)}/mile")
    print(f"\npoint cloud vs compact vectors: "
          f"{report.reduction_factor:.0f}x "
          f"(the survey's two-orders-of-magnitude claim)")

    # The compact form still navigates.
    compact = encode_map(city, simplify_tolerance=0.05)
    decoded = decode_map(compact)
    router = LaneRouter(decoded)
    lanes = [l for l in decoded.lanes() if l.length > 60]
    route = router.route_astar(lanes[0].id, lanes[-1].id)
    probe = lanes[3].centerline.point_at(lanes[3].length / 2.0)
    lane, dist = decoded.nearest_lane(float(probe[0]), float(probe[1]))
    print(f"decoded compact map: routed over {route.n_lanes} lanes; "
          f"nearest-lane query resolved within {dist:.2f} m")


if __name__ == "__main__":
    main()
