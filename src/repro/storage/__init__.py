"""Map serialization and storage accounting.

Three representations span the storage spectrum the survey discusses:

- :mod:`repro.storage.geojson` — readable interchange text format;
- :mod:`repro.storage.binary` — compact delta-coded binary vector format
  (the "remove the point cloud, keep the vectors" strategy of Li et al.
  [60] that reaches ~100 KB/mile);
- :mod:`repro.storage.pointcloud` — the raw dense point-cloud map the
  vector formats replace (~10 MB/mile, Pannen et al. [44]).
"""

from repro.storage.geojson import map_from_dict, map_to_dict, load_map, save_map
from repro.storage.binary import decode_map, encode_map
from repro.storage.journal import RecordJournal
from repro.storage.pointcloud import PointCloudMap, build_pointcloud_map
from repro.storage.stats import StorageReport, storage_report
from repro.storage.tilestore import StreamingMap, TileStore

__all__ = [
    "PointCloudMap",
    "RecordJournal",
    "StorageReport",
    "StreamingMap",
    "TileStore",
    "build_pointcloud_map",
    "decode_map",
    "encode_map",
    "load_map",
    "map_from_dict",
    "map_to_dict",
    "save_map",
    "storage_report",
]
