"""E10 — Li et al. [60] / Pannen et al. [44]: HD-map storage footprints.

Paper: conventional point-cloud HD maps ~10 MB/mile (200 GB for 20 000
miles); the compact vector map reaches ~100 KB/mile — a two-order-of-
magnitude reduction — while still supporting navigation. Shape: cloud in
the MB/mile regime, vector codec >= 100x smaller, decoded map still
routable.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.planning import LaneRouter
from repro.storage import decode_map, encode_map, storage_report
from repro.world import generate_grid_city


def _experiment(rng):
    city = generate_grid_city(rng, 5, 4, block_size=220.0)
    report = storage_report(city, rng)
    # Navigation still works on the decoded compact map.
    decoded = decode_map(encode_map(city, simplify_tolerance=0.05))
    router = LaneRouter(decoded)
    lanes = [l for l in decoded.lanes() if l.length > 60]
    route = router.route_astar(lanes[0].id, lanes[-1].id)
    return report, route


def test_e10_storage(benchmark, rng):
    report, route = once(benchmark, _experiment, rng)

    table = ResultTable("E10", "storage: point cloud vs compact vectors [60]")
    mb_mile = report.pointcloud_per_mile / 1e6
    table.add("point cloud (MB/mile)", "~10", f"{mb_mile:.1f}",
              ok=1.0 < mb_mile < 100.0)
    kb_mile = report.binary_simplified_per_mile / 1e3
    table.add("compact vector (KB/mile)", "~100", f"{kb_mile:.1f}",
              ok=kb_mile < 500.0)
    table.add("reduction factor", ">= 100x (2 orders)",
              f"{report.reduction_factor:.0f}x",
              ok=report.reduction_factor >= 100.0)
    table.add("GeoJSON (KB/mile)", "(between)",
              f"{report.geojson_per_mile / 1e3:.0f}",
              ok=report.binary_per_mile < report.geojson_per_mile)
    table.add("decoded map routable", "yes",
              f"route over {route.n_lanes} lanes", ok=route.n_lanes > 2)
    table.print()
    assert table.all_ok()
