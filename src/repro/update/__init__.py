"""Map maintenance and update pipelines.

- :mod:`repro.update.dbn` — discrete dynamic-Bayesian-network substrate;
- :mod:`repro.update.slamcu` — SLAMCU [41]: simultaneous localization and
  map-change update (the survey's Figure 2 system);
- :mod:`repro.update.crowd_update` — Pannen et al. [42], [44]: FCD change
  detection, job creation, and map updating with single- vs
  multi-traversal classification;
- :mod:`repro.update.incremental_fusion` — Liu et al. [43]: Kalman fusion
  of repeated measurements with confidence + time decay;
- :mod:`repro.update.lane_learner` — Kim et al. [45]: geometric lane
  learning from low-cost crowd data;
- :mod:`repro.update.diffnet` — Diff-Net [46]: rasterized map-vs-camera
  differencing;
- :mod:`repro.update.mec` — Qi et al. [47]: RSU/MEC distributed
  crowd-sensing update with edge pre-processing.
"""

from repro.update.dbn import DiscreteDBN, FeatureState
from repro.update.slamcu import Slamcu, SlamcuReport
from repro.update.crowd_update import (
    ChangeClassifier,
    CrowdUpdatePipeline,
    TraversalFeatures,
)
from repro.update.incremental_fusion import FusedElement, IncrementalFuser
from repro.update.lane_learner import LaneLearner
from repro.update.diffnet import DiffNet, DiffRegion
from repro.update.distribution import (
    ConflictPolicy,
    MapDistributionServer,
    VehicleMapClient,
)
from repro.update.mec import CentralAggregator, MecServer, RsuRegion

__all__ = [
    "CentralAggregator",
    "ChangeClassifier",
    "ConflictPolicy",
    "MapDistributionServer",
    "VehicleMapClient",
    "CrowdUpdatePipeline",
    "DiffNet",
    "DiffRegion",
    "DiscreteDBN",
    "FeatureState",
    "FusedElement",
    "IncrementalFuser",
    "LaneLearner",
    "MecServer",
    "RsuRegion",
    "Slamcu",
    "SlamcuReport",
    "TraversalFeatures",
]
