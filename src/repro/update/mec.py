"""Distributed crowd-sensing map update via RSU/MEC servers (Qi et al. [47]).

Vehicles upload raw detections to the *roadside unit* covering their
region; the MEC server in each RSU matches them against its HD-map tile
and forwards only the extracted *changes* to the central aggregator. The
win is architectural: the central node receives kilobytes of change
records instead of the raw detection firehose, and aggregation latency is
bounded by the per-region traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.changes import ChangeType, MapChange
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.tiles import TileId, TileScheme

RAW_DETECTION_BYTES = 32  # t, x, y, type, covariance summary
CHANGE_RECORD_BYTES = 24


@dataclass
class RsuRegion:
    """One RSU's coverage tile."""

    tile: TileId
    bounds: Tuple[float, float, float, float]


@dataclass
class MecServer:
    """Edge server: matches uploads against its map tile, emits changes."""

    region: RsuRegion
    prior: HDMap
    match_radius: float = 3.0
    min_evidence: int = 3
    raw_bytes_received: int = 0
    _unmatched: List[np.ndarray] = field(default_factory=list)
    _miss_counts: Dict[ElementId, int] = field(default_factory=dict)
    _seen_counts: Dict[ElementId, int] = field(default_factory=dict)

    def ingest(self, detections: Sequence[np.ndarray],
               visible_prior_ids: Sequence[ElementId]) -> None:
        """One vehicle's upload inside this region."""
        self.raw_bytes_received += RAW_DETECTION_BYTES * len(detections)
        prior_positions = {
            eid: self.prior.get(eid).position  # type: ignore[attr-defined]
            for eid in visible_prior_ids
        }
        matched = set()
        for det in detections:
            best = None
            best_d = self.match_radius
            for eid, pos in prior_positions.items():
                d = float(np.hypot(*(pos - det)))
                if d < best_d:
                    best, best_d = eid, d
            if best is None:
                self._unmatched.append(np.asarray(det, dtype=float))
            else:
                matched.add(best)
                self._seen_counts[best] = self._seen_counts.get(best, 0) + 1
        for eid in visible_prior_ids:
            if eid not in matched:
                self._miss_counts[eid] = self._miss_counts.get(eid, 0) + 1

    def extract_changes(self) -> List[MapChange]:
        """Pre-processing result: only changes leave the edge."""
        changes: List[MapChange] = []
        for eid, misses in self._miss_counts.items():
            seen = self._seen_counts.get(eid, 0)
            if misses >= self.min_evidence and misses > 2 * seen:
                pos = self.prior.get(eid).position  # type: ignore[attr-defined]
                changes.append(MapChange(
                    ChangeType.REMOVED, eid,
                    (float(pos[0]), float(pos[1])),
                ))
        if self._unmatched:
            from repro.creation.crowdsource import _greedy_cluster

            pts = np.array(self._unmatched)
            for members in _greedy_cluster(pts, self.match_radius):
                if len(members) < self.min_evidence:
                    continue
                centre = pts[members].mean(axis=0)
                changes.append(MapChange(
                    ChangeType.ADDED, ElementId("mec", len(changes)),
                    (float(centre[0]), float(centre[1])),
                ))
        return changes


class CentralAggregator:
    """Receives change records from the MEC fleet; tracks traffic."""

    def __init__(self) -> None:
        self.changes: List[MapChange] = []
        self.bytes_received: int = 0

    def receive(self, changes: Sequence[MapChange]) -> None:
        self.changes.extend(changes)
        self.bytes_received += CHANGE_RECORD_BYTES * len(changes)

    def centralized_baseline_bytes(self, servers: Sequence[MecServer]) -> int:
        """What the central node would have received without MEC: all raw."""
        return sum(s.raw_bytes_received for s in servers)

    def compression_factor(self, servers: Sequence[MecServer]) -> float:
        if self.bytes_received == 0:
            return float("inf")
        return self.centralized_baseline_bytes(servers) / self.bytes_received


def build_rsu_grid(prior: HDMap, tile_size: float = 500.0
                   ) -> List[Tuple[RsuRegion, MecServer]]:
    """One RSU/MEC per tile covering the map."""
    scheme = TileScheme(tile_size)
    out = []
    for tile in scheme.coverage(prior):
        region = RsuRegion(tile=tile, bounds=scheme.tile_bounds(tile))
        out.append((region, MecServer(region=region, prior=prior)))
    return out
