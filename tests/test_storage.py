"""Serialization round trips and storage accounting."""

import numpy as np
import pytest

from repro.core import HDMap, Lane, RuleType, TrafficSign
from repro.core.elements import SignType
from repro.errors import StorageError
from repro.geometry.polyline import straight
from repro.storage import (
    build_pointcloud_map,
    decode_map,
    encode_map,
    load_map,
    map_from_dict,
    map_to_dict,
    save_map,
    storage_report,
)
from repro.storage.binary import _read_varint, _write_varint
from repro.storage.pointcloud import PointCloudMap, bytes_per_mile
from io import BytesIO


class TestGeoJson:
    def test_roundtrip_all_kinds(self, highway):
        data = map_to_dict(highway)
        again = map_from_dict(data)
        assert len(again) == len(highway)
        assert again.counts_by_kind() == highway.counts_by_kind()

    def test_roundtrip_regulatory(self):
        hdmap = HDMap("r")
        lane = hdmap.create(Lane, centerline=straight([0, 0], [50, 0]))
        hdmap.create_regulatory(rule_type=RuleType.SPEED_LIMIT,
                                lanes=[lane.id], value=8.33)
        again = map_from_dict(map_to_dict(hdmap))
        rule = next(iter(again.regulatory_elements()))
        assert rule.value == pytest.approx(8.33)
        assert rule.lanes == [lane.id]

    def test_lane_references_preserved(self, highway):
        again = map_from_dict(map_to_dict(highway))
        for lane in again.lanes():
            if lane.left_boundary is not None:
                assert lane.left_boundary in again

    def test_coordinates_within_tolerance(self, highway):
        again = map_from_dict(map_to_dict(highway))
        lane = next(iter(highway.lanes()))
        lane2 = again.get(lane.id)
        err = np.abs(lane.centerline.points - lane2.centerline.points).max()
        assert err < 1e-3  # 4-decimal rounding

    def test_rejects_wrong_document(self):
        with pytest.raises(StorageError):
            map_from_dict({"type": "nope"})

    def test_rejects_wrong_version(self, highway):
        data = map_to_dict(highway)
        data["format_version"] = 999
        with pytest.raises(StorageError):
            map_from_dict(data)

    def test_save_load_file(self, highway, tmp_path):
        path = tmp_path / "map.json"
        n = save_map(highway, path)
        assert n == path.stat().st_size
        again = load_map(path)
        assert len(again) == len(highway)


class TestBinary:
    def test_varint_roundtrip(self):
        for value in [0, 1, 127, 128, 300, 2**20, 2**40]:
            buf = BytesIO()
            _write_varint(buf, value)
            buf.seek(0)
            assert _read_varint(buf) == value

    def test_roundtrip_counts(self, highway):
        blob = encode_map(highway)
        again = decode_map(blob)
        assert again.counts_by_kind() == highway.counts_by_kind()

    def test_roundtrip_city(self, city):
        again = decode_map(encode_map(city))
        assert again.counts_by_kind() == city.counts_by_kind()

    def test_centimetre_precision(self, highway):
        again = decode_map(encode_map(highway))
        lane = next(iter(highway.lanes()))
        err = np.abs(lane.centerline.points
                     - again.get(lane.id).centerline.points).max()
        assert err <= 0.0051

    def test_sign_attributes_roundtrip(self):
        hdmap = HDMap("s")
        hdmap.create(TrafficSign, position=np.array([3.0, 4.0]),
                     sign_type=SignType.SPEED_LIMIT, value=22.22,
                     facing=1.25)
        again = decode_map(encode_map(hdmap))
        sign = next(iter(again.signs()))
        assert sign.value == pytest.approx(22.22, rel=1e-5)
        assert sign.sign_type is SignType.SPEED_LIMIT

    def test_binary_much_smaller_than_json(self, highway):
        import json

        json_bytes = len(json.dumps(map_to_dict(highway)).encode())
        bin_bytes = len(encode_map(highway))
        assert bin_bytes < json_bytes / 4

    def test_simplification_shrinks(self, highway):
        exact = len(encode_map(highway))
        lossy = len(encode_map(highway, simplify_tolerance=0.1))
        assert lossy < exact

    def test_bad_magic(self):
        with pytest.raises(StorageError):
            decode_map(b"XXXX" + b"\x00" * 16)


class TestDecodeHardening:
    """decode_map must raise StorageError — never a raw struct.error /
    zlib.error / IndexError — on any truncated or corrupt input."""

    @pytest.fixture(scope="class")
    def blob(self):
        hdmap = HDMap("tiny")
        lane = hdmap.create(Lane, centerline=straight([0, 0], [40, 0]))
        hdmap.create(TrafficSign, position=np.array([10.0, 3.0]),
                     sign_type=SignType.STOP)
        hdmap.create_regulatory(rule_type=RuleType.SPEED_LIMIT,
                                lanes=[lane.id], value=13.9)
        return encode_map(hdmap)

    def test_truncation_at_every_boundary(self, blob):
        # every prefix: header cuts, payload-length cuts, body cuts
        for cut in range(len(blob)):
            with pytest.raises(StorageError):
                decode_map(blob[:cut])

    def test_corrupt_zlib_payload(self, blob):
        for offset in (9, 9 + (len(blob) - 9) // 2, len(blob) - 1):
            broken = bytearray(blob)
            broken[offset] ^= 0xFF
            with pytest.raises(StorageError):
                decode_map(bytes(broken))

    def test_unsupported_version(self, blob):
        broken = blob[:4] + b"\x63" + blob[5:]
        with pytest.raises(StorageError, match="version"):
            decode_map(broken)

    def test_accepts_buffer_input(self, blob):
        again = decode_map(memoryview(blob))
        assert len(again) == 3

    def test_declared_length_past_eof(self, blob):
        import struct

        header = blob[:4] + struct.pack("<BI", blob[4], len(blob) * 2)
        with pytest.raises(StorageError, match="truncated"):
            decode_map(header + blob[9:])


class TestPointCloud:
    def test_cloud_density_scales_with_area(self, highway, rng):
        sparse = build_pointcloud_map(highway, rng, points_per_m2=5.0)
        dense = build_pointcloud_map(highway, rng, points_per_m2=20.0)
        assert dense.n_points > 3 * sparse.n_points

    def test_bytes_roundtrip(self, rng):
        cloud = PointCloudMap(
            points=rng.normal(size=(100, 3)).astype(np.float32),
            intensity=rng.integers(0, 255, 100).astype(np.uint8))
        again = PointCloudMap.from_bytes(cloud.to_bytes())
        assert again.n_points == 100
        assert np.allclose(again.points, cloud.points)

    def test_bytes_per_mile_requires_segments(self):
        with pytest.raises(ValueError):
            bytes_per_mile(1000, HDMap("empty"))


class TestStorageReport:
    def test_ordering_matches_survey(self, highway, rng):
        report = storage_report(highway, rng)
        # Point cloud >> GeoJSON > binary > simplified binary.
        assert report.pointcloud_bytes > 50 * report.geojson_bytes
        assert report.geojson_bytes > report.binary_bytes
        assert report.binary_bytes >= report.binary_simplified_bytes
        assert report.reduction_factor > 100.0

    def test_pointcloud_per_mile_in_survey_band(self, highway, rng):
        report = storage_report(highway, rng)
        # Pannen et al.: ~10 MB/mile. Ours should be the same order.
        assert 1e6 < report.pointcloud_per_mile < 1e8
