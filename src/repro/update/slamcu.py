"""SLAMCU: Simultaneous Localization and Map Change Update (Jo et al. [41]).

One vehicle drives a (20 km highway, in the paper) route while localizing
against the prior HD map. Two inference threads run per traversal:

- *existing features*: a PRESENT/REMOVED DBN per mapped sign, driven by
  detected / expected-but-missed observations inside the sensor envelope;
- *new features*: unmatched detections are clustered and position-estimated
  from the vehicle's (imperfect) localization — the source of the paper's
  Figure 2 error histogram (mean 0.8 m, sigma 0.9 m).

Detected changes are emitted as a :class:`~repro.core.versioning.MapPatch`
for the map database, and scored against the scenario ground truth
(96.12 % change accuracy in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.changes import ChangeType, MapChange
from repro.core.elements import SignType, TrafficSign
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.versioning import MapPatch
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.transform import SE2
from repro.sensors.camera import Camera, SignDetection
from repro.update.dbn import DiscreteDBN
from repro.world.scenario import Scenario
from repro.world.traffic import Trajectory


@dataclass
class SlamcuReport:
    """Everything the paper reports: changes, accuracy, error histogram."""

    detected_changes: List[MapChange]
    patch: MapPatch
    change_accuracy: float  # correct change decisions / all decisions
    new_feature_errors: ErrorStats  # position error of estimated new signs
    position_errors: List[float] = field(default_factory=list)


class Slamcu:
    """Per-traversal change detector against a prior map."""

    def __init__(self, prior: HDMap,
                 camera: Optional[Camera] = None,
                 localization_sigma: float = 0.35,
                 removal_threshold: float = 0.25,
                 new_feature_min_obs: int = 4,
                 match_radius: float = 3.0) -> None:
        self.prior = prior
        self.camera = camera if camera is not None else Camera(
            detection_prob=0.9, false_positive_rate=0.03)
        self.localization_sigma = localization_sigma
        self.removal_threshold = removal_threshold
        self.new_feature_min_obs = new_feature_min_obs
        self.match_radius = match_radius

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario, trajectories, rng: np.random.Generator,
            frame_dt: float = 0.5) -> SlamcuReport:
        """Run change detection over one trajectory or a list of them.

        Multiple traversals (e.g. both directions of a highway) extend
        coverage and harden the DBN decisions, as in the paper's 20 km
        evaluation drive.
        """
        if isinstance(trajectories, Trajectory):
            trajectories = [trajectories]
        reality = scenario.reality
        dbns: Dict[ElementId, DiscreteDBN] = {
            sign.id: DiscreteDBN.presence_chain()
            for sign in self.prior.signs()
        }
        unmatched_obs: List[np.ndarray] = []

        for trajectory in trajectories:
            t = trajectory.start_time
            while t <= trajectory.end_time:
                true_pose = trajectory.pose_at(t)
                est_pose = self._localized_pose(true_pose, rng)
                detections = self.camera.observe_signs(reality, true_pose,
                                                       rng, t=t)
                self._process_frame(est_pose, detections, dbns, unmatched_obs)
                t += frame_dt

        changes, patch, raw_errors = self._conclude(
            dbns, unmatched_obs, scenario, rng)
        accuracy = self._accuracy(changes, scenario)
        stats_input = raw_errors if raw_errors else [float("nan")]
        return SlamcuReport(
            detected_changes=changes,
            patch=patch,
            change_accuracy=accuracy,
            new_feature_errors=error_stats(stats_input),
            position_errors=raw_errors,
        )

    # ------------------------------------------------------------------
    def _localized_pose(self, true_pose: SE2,
                        rng: np.random.Generator) -> SE2:
        """Map-based localization surrogate with the configured sigma."""
        return SE2(
            true_pose.x + float(rng.normal(0, self.localization_sigma)),
            true_pose.y + float(rng.normal(0, self.localization_sigma)),
            true_pose.theta + float(rng.normal(0, 0.01)),
        )

    def _process_frame(self, est_pose: SE2,
                       detections: Sequence[SignDetection],
                       dbns: Dict[ElementId, DiscreteDBN],
                       unmatched_obs: List[np.ndarray]) -> None:
        # Which prior signs should be visible from here?
        expected = [
            sign for sign in self.prior.landmarks_in_radius(
                est_pose.x, est_pose.y, self.camera.max_range)
            if isinstance(sign, TrafficSign)
            and self.camera.in_view(est_pose, sign.position)
        ]
        det_world = [est_pose.apply(d.body_frame_position())
                     for d in detections]
        used = [False] * len(det_world)
        for sign in expected:
            matched = False
            for i, world in enumerate(det_world):
                if used[i]:
                    continue
                if float(np.hypot(*(world - sign.position))) <= self.match_radius:
                    used[i] = True
                    matched = True
                    break
            # Likelihood of (detected | present) vs (detected | removed).
            if matched:
                dbns[sign.id].step([self.camera.detection_prob, 0.05])
            else:
                dbns[sign.id].step([1.0 - self.camera.detection_prob, 0.95])
        for i, world in enumerate(det_world):
            if not used[i]:
                unmatched_obs.append(world)

    # ------------------------------------------------------------------
    def _conclude(self, dbns: Dict[ElementId, DiscreteDBN],
                  unmatched_obs: List[np.ndarray], scenario: Scenario,
                  rng: np.random.Generator
                  ) -> Tuple[List[MapChange], MapPatch, List[float]]:
        changes: List[MapChange] = []
        patch = MapPatch(source="slamcu")

        # Removed features: presence belief collapsed.
        for sign_id, dbn in dbns.items():
            if dbn.probability(0) < self.removal_threshold:
                sign = self.prior.get(sign_id)
                assert isinstance(sign, TrafficSign)
                changes.append(MapChange(
                    ChangeType.REMOVED, sign_id,
                    (float(sign.position[0]), float(sign.position[1])),
                ))
                patch.remove(sign_id)

        # New features: cluster the unmatched observations.
        new_errors: List[float] = []
        if unmatched_obs:
            from repro.creation.crowdsource import _greedy_cluster

            pts = np.array(unmatched_obs)
            clusters = _greedy_cluster(pts, self.match_radius)
            truth_new = [c for c in scenario.true_changes
                         if c.change_type is ChangeType.ADDED]
            for members in clusters:
                if len(members) < self.new_feature_min_obs:
                    continue
                position = pts[members].mean(axis=0)
                eid = self.prior.new_id("sign")
                changes.append(MapChange(
                    ChangeType.ADDED, eid,
                    (float(position[0]), float(position[1])),
                ))
                patch.add(TrafficSign(id=eid, position=position,
                                      sign_type=SignType.DIRECTION))
                # Position error vs the nearest true added sign.
                if truth_new:
                    d = min(
                        float(np.hypot(position[0] - c.position[0],
                                       position[1] - c.position[1]))
                        for c in truth_new
                    )
                    if d <= self.match_radius * 2:
                        new_errors.append(d)
        return changes, patch, new_errors

    # ------------------------------------------------------------------
    def _accuracy(self, detected: Sequence[MapChange],
                  scenario: Scenario) -> float:
        """Fraction of correct change decisions.

        Decisions = one per true change (found or missed) + one per false
        detection; the paper's "accuracy of estimated map changes".
        """
        from repro.core.changes import match_changes

        relevant_truth = [c for c in scenario.true_changes
                          if c.change_type in (ChangeType.ADDED,
                                               ChangeType.REMOVED)]
        counts = match_changes(list(detected), relevant_truth,
                               radius=self.match_radius * 2)
        total = counts["tp"] + counts["fp"] + counts["fn"]
        if total == 0:
            return 1.0
        return counts["tp"] / total
