"""Map integrity validation.

The survey notes that "satisfying the basic needs cannot ensure the quality
of HD maps" [3] — creation pipelines make mistakes, so a map is checked
before publication. ``validate_map`` runs every registered check and
returns a list of :class:`ValidationIssue`; ``raise_on_error=True`` turns
errors into :class:`~repro.errors.MapValidationError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.core.elements import Lane, LaneBoundary, RoadSegment
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.errors import MapValidationError


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    severity: Severity
    check: str
    element_id: Optional[ElementId]
    message: str

    def __str__(self) -> str:
        where = f" [{self.element_id}]" if self.element_id else ""
        return f"{self.severity.value}:{self.check}{where}: {self.message}"


Check = Callable[[HDMap], Iterator[ValidationIssue]]

# Physical plausibility limits.
MIN_LANE_WIDTH = 2.0
MAX_LANE_WIDTH = 7.0
MAX_SPEED_LIMIT = 42.0  # m/s ~ 150 km/h


def _check_lane_references(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Lanes must reference boundaries and segments that exist."""
    for lane in hdmap.lanes():
        for ref, label in ((lane.left_boundary, "left_boundary"),
                           (lane.right_boundary, "right_boundary"),
                           (lane.segment, "segment")):
            if ref is not None and ref not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "lane_references", lane.id,
                    f"{label} {ref} does not exist",
                )


def _check_lane_geometry(hdmap: HDMap) -> Iterator[ValidationIssue]:
    for lane in hdmap.lanes():
        if not (MIN_LANE_WIDTH <= lane.width <= MAX_LANE_WIDTH):
            yield ValidationIssue(
                Severity.ERROR, "lane_geometry", lane.id,
                f"implausible lane width {lane.width:.2f} m",
            )
        if lane.length < 1.0:
            yield ValidationIssue(
                Severity.WARNING, "lane_geometry", lane.id,
                f"very short lane ({lane.length:.2f} m)",
            )
        if not (0.0 < lane.speed_limit <= MAX_SPEED_LIMIT):
            yield ValidationIssue(
                Severity.ERROR, "lane_geometry", lane.id,
                f"implausible speed limit {lane.speed_limit:.1f} m/s",
            )


def _check_boundary_consistency(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Boundaries referenced by a lane should flank its centerline."""
    for lane in hdmap.lanes():
        mid = lane.centerline.point_at(lane.length / 2.0)
        for ref, expect_left in ((lane.left_boundary, True),
                                 (lane.right_boundary, False)):
            if ref is None or ref not in hdmap:
                continue
            boundary = hdmap.get(ref)
            if not isinstance(boundary, LaneBoundary):
                yield ValidationIssue(
                    Severity.ERROR, "boundary_consistency", lane.id,
                    f"{ref} is not a LaneBoundary",
                )
                continue
            mid_b = boundary.line.point_at(boundary.line.length / 2.0)
            _, lateral = lane.centerline.project(mid_b)
            if expect_left and lateral < 0:
                yield ValidationIssue(
                    Severity.WARNING, "boundary_consistency", lane.id,
                    f"left boundary {ref} lies to the right of the centerline",
                )
            if not expect_left and lateral > 0:
                yield ValidationIssue(
                    Severity.WARNING, "boundary_consistency", lane.id,
                    f"right boundary {ref} lies to the left of the centerline",
                )


def _check_segment_bundles(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Segment lane bundles must reference existing lanes that point back."""
    for segment in hdmap.segments():
        for lane_id in list(segment.forward_lanes) + list(segment.backward_lanes):
            if lane_id not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "segment_bundles", segment.id,
                    f"bundle references missing lane {lane_id}",
                )
                continue
            lane = hdmap.get(lane_id)
            if isinstance(lane, Lane) and lane.segment != segment.id:
                yield ValidationIssue(
                    Severity.WARNING, "segment_bundles", segment.id,
                    f"lane {lane_id} does not point back to this segment",
                )
        for node_ref in (segment.start_node, segment.end_node):
            if node_ref is not None and node_ref not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "segment_bundles", segment.id,
                    f"missing node {node_ref}",
                )


def _check_connectivity(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Warn about dead-end lanes (no successor), excluding map boundary."""
    try:
        min_x, min_y, max_x, max_y = hdmap.bounds()
    except Exception:
        return
    margin = 30.0
    for lane in hdmap.lanes():
        if hdmap.successors(lane.id):
            continue
        ex, ey = lane.centerline.end
        at_edge = (
            ex < min_x + margin or ex > max_x - margin
            or ey < min_y + margin or ey > max_y - margin
        )
        if not at_edge:
            yield ValidationIssue(
                Severity.WARNING, "connectivity", lane.id,
                "interior lane has no successor",
            )


def _check_regulatory(hdmap: HDMap) -> Iterator[ValidationIssue]:
    for rule in hdmap.regulatory_elements():
        for lane_id in rule.lanes:
            if lane_id not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "regulatory", rule.id,
                    f"rule governs missing lane {lane_id}",
                )
        for ev in rule.evidence:
            if ev not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "regulatory", rule.id,
                    f"rule cites missing evidence {ev}",
                )


ALL_CHECKS: List[Check] = [
    _check_lane_references,
    _check_lane_geometry,
    _check_boundary_consistency,
    _check_segment_bundles,
    _check_connectivity,
    _check_regulatory,
]


def validate_map(hdmap: HDMap, raise_on_error: bool = False) -> List[ValidationIssue]:
    """Run all integrity checks; optionally raise if any ERROR is found."""
    issues: List[ValidationIssue] = []
    for check in ALL_CHECKS:
        issues.extend(check(hdmap))
    if raise_on_error:
        errors = [i for i in issues if i.severity is Severity.ERROR]
        if errors:
            summary = "; ".join(str(e) for e in errors[:5])
            raise MapValidationError(
                f"{len(errors)} validation error(s): {summary}"
            )
    return issues
