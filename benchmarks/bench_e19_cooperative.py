"""E19 — Hery et al. [55]: decentralized cooperative localization.

Paper: LDM exchange between vehicles improves consistency and accuracy;
the HD-map-anchored bias estimator removes common GNSS bias. Shape:
cooperative < standalone error; bias estimator adds a further gain.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.localization import CooperativeLocalizer
from repro.sensors.gnss import GnssFix


def _run_convoy(rng, cooperate: bool, use_bias: bool, steps: int = 40):
    truth = [np.array([0.0, 0.0]), np.array([25.0, 3.5]),
             np.array([50.0, 0.0])]
    speed = np.array([15.0, 0.0])
    biases = [rng.normal(0, 1.2, 2) for _ in truth]
    landmark = np.array([100.0, 8.0])  # geo-referenced HD-map feature
    locs = [CooperativeLocalizer(i, truth[i] + rng.normal(0, 2.0, 2),
                                 use_bias_estimator=use_bias)
            for i in range(len(truth))]
    dt = 0.5
    for step in range(steps):
        truth = [t + speed * dt for t in truth]
        landmark = landmark + speed * dt * 0  # static feature
        for i, loc in enumerate(locs):
            loc.predict(speed * dt, 0.1)
            raw = truth[i] + biases[i] + rng.normal(0, 0.5, 2)
            fix = GnssFix(step * dt, raw, 1.3)
            if use_bias and float(np.hypot(*(landmark - truth[i]))) < 60.0:
                offset = (landmark - truth[i]) + rng.normal(0, 0.1, 2)
                loc.observe_map_feature(raw, offset, landmark)
            loc.update_gnss(fix)
        if cooperate:
            for i, sender in enumerate(locs):
                for j, receiver in enumerate(locs):
                    if i != j:
                        rel = truth[j] - truth[i]
                        receiver.receive(sender.broadcast(rel, 0.2, rng, j))
    return float(np.mean([loc.error_to(truth[i])
                          for i, loc in enumerate(locs)]))


def _experiment(rng):
    seeds = [int(rng.integers(0, 2**31)) for _ in range(6)]

    def mean_over_seeds(cooperate, use_bias):
        return float(np.mean([
            _run_convoy(np.random.default_rng(s), cooperate, use_bias)
            for s in seeds
        ]))

    return {
        "standalone": mean_over_seeds(False, False),
        "cooperative": mean_over_seeds(True, False),
        "cooperative+bias": mean_over_seeds(True, True),
    }


def test_e19_cooperative_localization(benchmark, rng):
    results = once(benchmark, _experiment, rng)

    table = ResultTable("E19", "cooperative localization with LDMs [55]")
    table.add("standalone error (m)", "(baseline)",
              f"{results['standalone']:.2f}", ok=None)
    table.add("cooperative error (m)", "(better)",
              f"{results['cooperative']:.2f}",
              ok=results["cooperative"] <= results["standalone"] * 1.05)
    table.add("cooperative + bias estimator (m)", "(best)",
              f"{results['cooperative+bias']:.2f}",
              ok=results["cooperative+bias"] < results["standalone"])
    gain = results["standalone"] - results["cooperative+bias"]
    table.add("total gain (m)", "> 0", f"{gain:.2f}", ok=gain > 0.1)
    table.print()
    assert table.all_ok()
