"""Table I of the paper as queryable data.

The survey's central artifact is its taxonomy: two categories, eight
sub-areas, and the referenced techniques in each. This module encodes the
table and maps every sub-area to the :mod:`repro` modules implementing it,
so the Table I bench can verify that the library actually covers the
taxonomy it claims to reproduce.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class SubArea:
    """One row of Table I."""

    category: str  # "Design and Construction" | "Applications"
    name: str
    references: Tuple[str, ...]  # citation keys from the survey
    modules: Tuple[str, ...]  # repro modules implementing it

    def implemented(self) -> bool:
        try:
            for module in self.modules:
                importlib.import_module(module)
        except ImportError:
            return False
        return True


DESIGN_AND_CONSTRUCTION = "Design and Construction"
APPLICATIONS = "Applications"

TABLE_I: List[SubArea] = [
    SubArea(
        category=DESIGN_AND_CONSTRUCTION,
        name="Map Modeling and Design",
        references=("3", "17", "18", "19", "20", "21", "22", "23", "24", "25"),
        modules=("repro.core", "repro.core.hdmap", "repro.core.elements",
                 "repro.core.regulatory", "repro.world.hdmapgen",
                 "repro.depthmap.wmof"),
    ),
    SubArea(
        category=DESIGN_AND_CONSTRUCTION,
        name="Map Creation",
        references=("26", "27", "28", "29", "30", "31", "32", "33", "34",
                    "35", "36", "37", "38", "39", "40"),
        modules=("repro.creation", "repro.creation.lidar_pipeline",
                 "repro.creation.crowdsource", "repro.creation.probe_pipeline",
                 "repro.creation.aerial", "repro.creation.smartphone",
                 "repro.creation.traffic_lights",
                 "repro.creation.ilci_integration", "repro.creation.lane_graph",
                 "repro.creation.feature_layers"),
    ),
    SubArea(
        category=DESIGN_AND_CONSTRUCTION,
        name="Map Maintenance and Update",
        references=("10", "11", "41", "42", "43", "44", "45", "46", "47"),
        modules=("repro.update", "repro.update.slamcu",
                 "repro.update.crowd_update", "repro.update.incremental_fusion",
                 "repro.update.lane_learner", "repro.update.diffnet",
                 "repro.update.mec"),
    ),
    SubArea(
        category=APPLICATIONS,
        name="Localization",
        references=("22", "48", "49", "50", "51", "52", "53", "54", "55",
                    "56", "57"),
        modules=("repro.localization", "repro.localization.lane_marking",
                 "repro.localization.landmarks", "repro.localization.geometric",
                 "repro.localization.surfaces", "repro.localization.hdmi_loc",
                 "repro.localization.mlvhm", "repro.localization.adas",
                 "repro.localization.cooperative", "repro.localization.semantic",
                 "repro.localization.map_matching"),
    ),
    SubArea(
        category=APPLICATIONS,
        name="Pose Estimation",
        references=("22", "23", "58"),
        modules=("repro.pose", "repro.pose.pose6dof", "repro.pose.association"),
    ),
    SubArea(
        category=APPLICATIONS,
        name="Path Planning",
        references=("2", "44", "52", "59", "60", "61", "62"),
        modules=("repro.planning", "repro.planning.route_graph",
                 "repro.planning.bhps", "repro.planning.frenet_paths",
                 "repro.planning.pcc"),
    ),
    SubArea(
        category=APPLICATIONS,
        name="Perception",
        references=("6", "54", "63"),
        modules=("repro.perception", "repro.perception.hdnet",
                 "repro.perception.cooperative"),
    ),
    SubArea(
        category=APPLICATIONS,
        name="ATVs",
        references=("11", "64"),
        modules=("repro.atv", "repro.atv.sign_update", "repro.atv.vslam",
                 "repro.atv.occupancy"),
    ),
]


def by_category() -> Dict[str, List[SubArea]]:
    out: Dict[str, List[SubArea]] = {}
    for area in TABLE_I:
        out.setdefault(area.category, []).append(area)
    return out


def coverage() -> Dict[str, bool]:
    """Sub-area name -> is every mapped module importable."""
    return {area.name: area.implemented() for area in TABLE_I}


def render_table() -> str:
    """Render Table I with implementation status, bench-output style."""
    lines = ["TABLE I — TAXONOMY OF THE PRESENTED TECHNIQUES", ""]
    for category, areas in by_category().items():
        lines.append(category)
        for area in areas:
            refs = ", ".join(f"[{r}]" for r in area.references)
            status = "implemented" if area.implemented() else "MISSING"
            lines.append(f"  {area.name:<28} {status:<12} {refs}")
    return "\n".join(lines)
