"""Mmap-backed tile pack store and binary delta sync.

The distribution story of the survey (Li et al.'s vector compaction,
~10 MB/mile → ~100 KB/mile) only pays off if the *serving* path ships
those compact bytes without re-materializing Python objects. This
package closes that gap with two wire-level pieces:

- :mod:`repro.pack.format` — the **tile pack file**: one mmap'd file
  holding a fixed-size header, a tile directory (tile id, offset,
  length, version, checksum, element count), and concatenated
  ``repro.storage.binary`` payloads. :class:`PackWriter` appends
  payloads and atomically publishes a new directory; :class:`PackReader`
  serves any tile as a ``memoryview`` slice of the mapping — zero
  copies, lazy :class:`~repro.core.hdmap.HDMap` decode only on demand.
  A million-element map cold-starts in the time it takes to map the
  file and parse the directory, not the time it takes to decode a
  million elements.
- :mod:`repro.pack.delta` — the **binary delta wire format**:
  ``encode_delta``/``decode_delta`` pack a
  :class:`~repro.update.distribution.SyncDelta` as varint/zigzag patch
  records (changed/removed elements only), so ``ChangesSince`` ships a
  small fraction of the pickled payload.

Both formats raise :class:`~repro.errors.StorageError` (or its
:class:`~repro.errors.PackError` subclass) on truncated or corrupt
input — raw ``struct.error``/``zlib.error`` never escape.
"""

from repro.errors import PackError
from repro.pack.delta import decode_delta, encode_delta
from repro.pack.format import PackEntry, PackReader, PackWriter, compact_pack

__all__ = [
    "PackEntry",
    "PackError",
    "PackReader",
    "PackWriter",
    "compact_pack",
    "decode_delta",
    "encode_delta",
]
