import math

import numpy as np
import pytest

from repro.geometry.transform import SE2, SE3


class TestSE2:
    def test_identity_apply(self):
        p = np.array([3.0, -2.0])
        assert np.allclose(SE2.identity().apply(p), p)

    def test_apply_rotates_then_translates(self):
        pose = SE2(1.0, 2.0, math.pi / 2)
        assert np.allclose(pose.apply(np.array([1.0, 0.0])), [1.0, 3.0])

    def test_compose_matches_matrix_product(self):
        a = SE2(1.0, 2.0, 0.3)
        b = SE2(-0.5, 4.0, -1.1)
        composed = a @ b
        assert np.allclose(composed.as_matrix(), a.as_matrix() @ b.as_matrix())

    def test_inverse_roundtrip(self):
        pose = SE2(5.0, -3.0, 2.2)
        identity = pose @ pose.inverse()
        assert identity.x == pytest.approx(0.0, abs=1e-12)
        assert identity.y == pytest.approx(0.0, abs=1e-12)
        assert identity.theta == pytest.approx(0.0, abs=1e-12)

    def test_inverse_apply_undoes_apply(self):
        pose = SE2(5.0, -3.0, 2.2)
        p = np.array([7.0, 1.0])
        assert np.allclose(pose.inverse().apply(pose.apply(p)), p)

    def test_relative_to(self):
        a = SE2(1.0, 1.0, 0.5)
        b = SE2(2.0, 3.0, 1.0)
        rel = b.relative_to(a)
        assert np.allclose((a @ rel).as_matrix(), b.as_matrix())

    def test_matrix_roundtrip(self):
        pose = SE2(1.5, -0.5, -2.5)
        again = SE2.from_matrix(pose.as_matrix())
        assert again.x == pytest.approx(pose.x)
        assert again.theta == pytest.approx(pose.theta)

    def test_distance_and_heading_error(self):
        a = SE2(0.0, 0.0, 0.0)
        b = SE2(3.0, 4.0, math.pi)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert a.heading_error_to(b) == pytest.approx(math.pi)

    def test_apply_direction_no_translation(self):
        pose = SE2(100.0, 100.0, math.pi / 2)
        assert np.allclose(pose.apply_direction(np.array([1.0, 0.0])),
                           [0.0, 1.0], atol=1e-12)


class TestSE3:
    def test_identity(self):
        p = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(SE3.identity().apply(p), p)

    def test_compose_inverse_is_identity(self):
        pose = SE3(1.0, 2.0, 3.0, 0.1, -0.2, 0.7)
        identity = pose @ pose.inverse()
        assert abs(identity.x) < 1e-9
        assert abs(identity.roll) < 1e-9
        assert abs(identity.yaw) < 1e-9

    def test_rotation_matrix_orthonormal(self):
        pose = SE3(0, 0, 0, 0.3, 0.4, -1.2)
        rot = pose.rotation_matrix()
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_from_se2_roundtrip(self):
        planar = SE2(4.0, 5.0, 1.1)
        lifted = SE3.from_se2(planar, z=2.0)
        assert lifted.z == 2.0
        back = lifted.to_se2()
        assert back.x == pytest.approx(4.0)
        assert back.theta == pytest.approx(1.1)

    def test_yaw_only_matches_se2(self):
        pose3 = SE3(1.0, 2.0, 0.0, 0.0, 0.0, 0.8)
        pose2 = SE2(1.0, 2.0, 0.8)
        p = np.array([3.0, -1.0])
        lifted = np.array([p[0], p[1], 0.0])
        assert np.allclose(pose3.apply(lifted)[:2], pose2.apply(p))

    def test_translation_error(self):
        a = SE3(0, 0, 0, 0, 0, 0)
        b = SE3(1, 2, 2, 0, 0, 0)
        assert a.translation_error_to(b) == pytest.approx(3.0)

    def test_gimbal_lock_recovery(self):
        pose = SE3(0, 0, 0, 0.0, math.pi / 2, 0.3)
        rot = pose.rotation_matrix()
        # Should not raise; composition still consistent.
        inv = pose.inverse()
        assert np.allclose(inv.rotation_matrix(), rot.T, atol=1e-9)
