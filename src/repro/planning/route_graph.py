"""Lane-level routing with instrumented graph search.

The router plans over the map's topological layer (lane follow + lane
change edges). Search implementations are hand-rolled rather than
delegated to networkx so expansion counts are observable — the quantity
the BHPS comparison [62] is about.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.elements import Lane
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.errors import NoRouteError


@dataclass
class SearchStats:
    expansions: int = 0
    frontier_peak: int = 0


@dataclass
class RouteResult:
    lane_ids: List[ElementId]
    cost: float
    stats: SearchStats

    @property
    def n_lanes(self) -> int:
        return len(self.lane_ids)


class LaneRouter:
    """Dijkstra / A* routing over the lane graph."""

    def __init__(self, hdmap: HDMap) -> None:
        self.map = hdmap
        self._adjacency: Optional[Dict[ElementId, List[Tuple[ElementId, float]]]] = None

    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[ElementId, List[Tuple[ElementId, float]]]:
        if self._adjacency is None:
            graph = self.map.lane_graph()
            adj: Dict[ElementId, List[Tuple[ElementId, float]]] = {
                n: [] for n in graph.nodes}
            for u, v, data in graph.edges(data=True):
                adj[u].append((v, float(data["length"])))
            self._adjacency = adj
        return self._adjacency

    def invalidate(self) -> None:
        self._adjacency = None

    # ------------------------------------------------------------------
    def route(self, start: ElementId, goal: ElementId,
              heuristic: Optional[Callable[[ElementId], float]] = None
              ) -> RouteResult:
        """Dijkstra (or A* when ``heuristic`` is given) start -> goal."""
        adj = self.adjacency()
        if start not in adj or goal not in adj:
            raise NoRouteError("start or goal lane not in the graph")
        h = heuristic if heuristic is not None else (lambda _: 0.0)
        stats = SearchStats()
        dist: Dict[ElementId, float] = {start: 0.0}
        parent: Dict[ElementId, ElementId] = {}
        heap: List[Tuple[float, int, ElementId]] = [(h(start), 0, start)]
        counter = 1
        closed = set()
        while heap:
            stats.frontier_peak = max(stats.frontier_peak, len(heap))
            _, _, current = heapq.heappop(heap)
            if current in closed:
                continue
            closed.add(current)
            stats.expansions += 1
            if current == goal:
                return RouteResult(self._unwind(parent, start, goal),
                                   dist[goal], stats)
            for neighbor, weight in adj[current]:
                candidate = dist[current] + weight
                if candidate < dist.get(neighbor, float("inf")):
                    dist[neighbor] = candidate
                    parent[neighbor] = current
                    heapq.heappush(heap, (candidate + h(neighbor), counter,
                                          neighbor))
                    counter += 1
        raise NoRouteError(f"no route from {start} to {goal}")

    def route_astar(self, start: ElementId, goal: ElementId) -> RouteResult:
        """A* with the straight-line distance heuristic."""
        goal_lane = self.map.get(goal)
        assert isinstance(goal_lane, Lane)
        goal_point = goal_lane.centerline.start

        def h(lane_id: ElementId) -> float:
            lane = self.map.get(lane_id)
            assert isinstance(lane, Lane)
            return float(np.hypot(*(goal_point - lane.centerline.end)))

        return self.route(start, goal, heuristic=h)

    # ------------------------------------------------------------------
    @staticmethod
    def _unwind(parent: Dict[ElementId, ElementId], start: ElementId,
                goal: ElementId) -> List[ElementId]:
        path = [goal]
        while path[-1] != start:
            path.append(parent[path[-1]])
        return list(reversed(path))

    # ------------------------------------------------------------------
    def route_between_points(self, start_xy: Tuple[float, float],
                             goal_xy: Tuple[float, float]) -> RouteResult:
        start_lane, _ = self.map.nearest_lane(*start_xy)
        goal_lane, _ = self.map.nearest_lane(*goal_xy)
        return self.route_astar(start_lane.id, goal_lane.id)

    def route_length(self, result: RouteResult) -> float:
        return float(sum(
            self.map.get(lane_id).length  # type: ignore[attr-defined]
            for lane_id in result.lane_ids))
