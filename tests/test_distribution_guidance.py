"""Map distribution server + vehicle sync, and turn-by-turn guidance."""

import threading

import numpy as np
import pytest

from repro.core import HDMap, MapPatch, SignType, TrafficSign
from repro.update.distribution import (
    ConflictPolicy,
    MapDistributionServer,
    VehicleMapClient,
)
from repro.planning import LaneRouter
from repro.planning.guidance import Maneuver, describe_route, render_guidance


def _base_map():
    hdmap = HDMap("dist")
    from repro.geometry.polyline import straight
    from repro.core import Lane

    hdmap.create(Lane, centerline=straight([0, 0], [100, 0]))
    hdmap.create(TrafficSign, position=np.array([50.0, 5.0]),
                 sign_type=SignType.STOP)
    return hdmap


def _add_sign_patch(server, source, confidence, position):
    patch = MapPatch(source=source, confidence=confidence)
    patch.add(TrafficSign(id=server.db.map.new_id("sign"),
                          position=np.asarray(position, dtype=float),
                          sign_type=SignType.DIRECTION))
    return patch


class TestDistributionServer:
    def test_ingest_bumps_version(self):
        server = MapDistributionServer(_base_map())
        result = server.ingest(_add_sign_patch(server, "slamcu", 0.9,
                                               [10.0, 5.0]))
        assert result.accepted
        assert server.version == 1

    def test_empty_patch_rejected(self):
        server = MapDistributionServer(_base_map())
        assert not server.ingest(MapPatch()).accepted

    def test_conflict_reject_policy(self):
        server = MapDistributionServer(_base_map(),
                                       policy=ConflictPolicy.REJECT)
        sign = next(iter(server.db.map.signs()))
        p1 = MapPatch(source="a", confidence=0.9).remove(sign.id)
        assert server.ingest(p1).accepted
        # Second pipeline tries to touch the same element immediately.
        p2 = MapPatch(source="b", confidence=0.9).add(
            TrafficSign(id=sign.id, position=np.array([1.0, 1.0]),
                        sign_type=SignType.STOP))
        result = server.ingest(p2)
        assert not result.accepted
        assert "conflict" in result.reason

    def test_highest_confidence_drops_weaker_op(self):
        server = MapDistributionServer(
            _base_map(), policy=ConflictPolicy.HIGHEST_CONFIDENCE)
        sign = next(iter(server.db.map.signs()))
        strong = MapPatch(source="survey", confidence=0.95).remove(sign.id)
        assert server.ingest(strong).accepted
        # A weaker pipeline tries to resurrect it: its op is dropped.
        weak = MapPatch(source="crowd", confidence=0.4).add(
            TrafficSign(id=sign.id, position=sign.position,
                        sign_type=SignType.STOP))
        result = server.ingest(weak)
        assert not result.accepted
        assert sign.id not in server.db.map

    def test_stronger_update_overrides(self):
        server = MapDistributionServer(
            _base_map(), policy=ConflictPolicy.HIGHEST_CONFIDENCE)
        first = _add_sign_patch(server, "crowd", 0.4, [20.0, 5.0])
        assert server.ingest(first).accepted
        new_id = first.ops[0].element.id
        better = MapPatch(source="survey", confidence=0.95).remove(new_id)
        assert server.ingest(better).accepted
        assert new_id not in server.db.map

    def test_old_conflicts_expire(self):
        server = MapDistributionServer(
            _base_map(), policy=ConflictPolicy.REJECT, conflict_window=2)
        sign = next(iter(server.db.map.signs()))
        assert server.ingest(
            MapPatch(source="a", confidence=0.9).remove(sign.id)).accepted
        # Unrelated patches advance the version past the window.
        for k in range(3):
            assert server.ingest(_add_sign_patch(
                server, "a", 0.9, [30.0 + k, 5.0])).accepted
        late = MapPatch(source="b", confidence=0.9).add(
            TrafficSign(id=sign.id, position=sign.position,
                        sign_type=SignType.STOP))
        assert server.ingest(late).accepted


class TestConcurrentPolicyIngest:
    """Conflict policies must hold under genuinely concurrent ingest —
    the situation the streaming ingest pipeline creates."""

    @staticmethod
    def _run_concurrent(fns):
        results = [None] * len(fns)
        barrier = threading.Barrier(len(fns))

        def call(i, fn):
            barrier.wait()
            results[i] = fn()

        threads = [threading.Thread(target=call, args=(i, fn))
                   for i, fn in enumerate(fns)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    def test_reject_policy_single_winner_under_concurrency(self):
        server = MapDistributionServer(_base_map(),
                                       policy=ConflictPolicy.REJECT)
        sign = next(iter(server.db.map.signs()))
        patches = [MapPatch(source=f"pipeline-{i}",
                            confidence=0.9).remove(sign.id)
                   for i in range(8)]
        results = self._run_concurrent(
            [lambda p=p: server.ingest(p) for p in patches])
        accepted = [r for r in results if r.accepted]
        assert len(accepted) == 1
        assert sign.id not in server.db.map
        assert server.version == 1
        assert all("conflict" in r.reason
                   for r in results if not r.accepted)

    def test_highest_confidence_concurrent_weak_writers_lose(self):
        server = MapDistributionServer(
            _base_map(), policy=ConflictPolicy.HIGHEST_CONFIDENCE)
        sign = next(iter(server.db.map.signs()))
        strong = MapPatch(source="survey", confidence=0.95).remove(sign.id)
        assert server.ingest(strong).accepted
        weak = [MapPatch(source=f"crowd-{i}", confidence=0.3).add(
                    TrafficSign(id=sign.id, position=sign.position,
                                sign_type=SignType.STOP))
                for i in range(8)]
        results = self._run_concurrent(
            [lambda p=p: server.ingest(p) for p in weak])
        assert not any(r.accepted for r in results)
        assert sign.id not in server.db.map
        assert server.version == 1

    def test_highest_confidence_disjoint_elements_all_land(self):
        server = MapDistributionServer(
            _base_map(), policy=ConflictPolicy.HIGHEST_CONFIDENCE)
        # Allocate ids up front: id allocation is not the object under
        # test, the concurrent ingest path is.
        patches = [_add_sign_patch(server, f"p{i}", 0.5 + 0.05 * i,
                                   [10.0 + 5.0 * i, 5.0])
                   for i in range(8)]
        results = self._run_concurrent(
            [lambda p=p: server.ingest(p) for p in patches])
        assert all(r.accepted for r in results)
        assert server.version == 8
        assert sorted(r.version for r in results) == list(range(1, 9))

    def test_per_call_policy_override(self):
        server = MapDistributionServer(
            _base_map(), policy=ConflictPolicy.LAST_WRITER_WINS)
        sign = next(iter(server.db.map.signs()))
        assert server.ingest(
            MapPatch(source="a", confidence=0.9).remove(sign.id)).accepted
        resurrect = MapPatch(source="b", confidence=0.9).add(
            TrafficSign(id=sign.id, position=sign.position,
                        sign_type=SignType.STOP))
        # Stricter per-call policy rejects what the default would accept.
        assert not server.ingest(resurrect,
                                 policy=ConflictPolicy.REJECT).accepted
        assert server.ingest(resurrect).accepted

    def test_listener_notified_on_accepted_ingest_only(self):
        server = MapDistributionServer(_base_map())
        events = []
        server.add_listener(lambda v, p: events.append((v, p.source)))
        server.ingest(_add_sign_patch(server, "slamcu", 0.9, [10.0, 5.0]))
        assert events == [(1, "slamcu")]
        assert not server.ingest(MapPatch()).accepted
        assert len(events) == 1


class TestVehicleSync:
    def test_incremental_sync_consistency(self):
        server = MapDistributionServer(_base_map())
        client = VehicleMapClient(server)
        for k in range(5):
            server.ingest(_add_sign_patch(server, "slamcu", 0.9,
                                          [10.0 + k, 5.0]))
        applied = client.sync()
        assert applied == 5
        assert client.is_consistent()

    def test_incremental_sync_cheaper_than_bootstrap(self, city):
        server = MapDistributionServer(city.copy())
        client = VehicleMapClient(server)
        bootstrap_bytes = client.bytes_downloaded
        for k in range(5):
            server.ingest(_add_sign_patch(server, "slamcu", 0.9,
                                          [10.0 + k, 5.0]))
        client.sync()
        assert client.is_consistent()
        # Five change records cost a tiny fraction of re-downloading a
        # city-scale map.
        assert (client.bytes_downloaded - bootstrap_bytes
                < bootstrap_bytes / 10)

    def test_sync_handles_removals(self):
        server = MapDistributionServer(_base_map())
        client = VehicleMapClient(server)
        sign = next(iter(server.db.map.signs()))
        server.ingest(MapPatch(source="s", confidence=0.9).remove(sign.id))
        client.sync()
        assert sign.id not in client.local
        assert client.is_consistent()

    def test_noop_sync(self):
        server = MapDistributionServer(_base_map())
        client = VehicleMapClient(server)
        assert client.sync() == 0


class TestGuidance:
    def test_city_route_has_turns_and_arrival(self, city):
        router = LaneRouter(city)
        lanes = [l for l in city.lanes() if l.length > 60]
        route = router.route_astar(lanes[0].id, lanes[-1].id)
        steps = describe_route(city, route)
        maneuvers = [s.maneuver for s in steps]
        assert maneuvers[0] is Maneuver.DEPART
        assert maneuvers[-1] is Maneuver.ARRIVE
        assert any(m in (Maneuver.TURN_LEFT, Maneuver.TURN_RIGHT,
                         Maneuver.LANE_CHANGE_LEFT,
                         Maneuver.LANE_CHANGE_RIGHT,
                         Maneuver.CONTINUE)
                   for m in maneuvers)

    def test_distances_cover_route(self, city):
        router = LaneRouter(city)
        lanes = [l for l in city.lanes() if l.length > 60]
        route = router.route_astar(lanes[0].id, lanes[3].id)
        steps = describe_route(city, route)
        total = sum(s.distance for s in steps)
        true_length = sum(city.get(eid).length for eid in route.lane_ids)
        assert total == pytest.approx(true_length, rel=0.05)

    def test_straight_route_is_single_continue(self, highway):
        router = LaneRouter(highway)
        lane = next(iter(highway.lanes()))
        route = router.route(lane.id, lane.id)
        steps = describe_route(highway, route)
        continues = [s for s in steps if s.maneuver is Maneuver.CONTINUE]
        assert len(continues) == 1
        assert continues[0].distance == pytest.approx(lane.length, rel=0.01)

    def test_render(self, city):
        router = LaneRouter(city)
        lanes = [l for l in city.lanes() if l.length > 60]
        route = router.route_astar(lanes[0].id, lanes[-1].id)
        text = render_guidance(describe_route(city, route))
        assert "depart" in text and "arrive" in text
