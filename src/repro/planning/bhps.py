"""Bidirectional hybrid path search (Yang et al. [62]).

BHPS runs two searches at once over the lane-level map — a cheap breadth-
first sweep from one end and a cost-aware Dijkstra from the other — and
stitches the route where the frontiers meet. The survey describes both
pairings (forward BFS + reverse Dijkstra, and forward Dijkstra + reverse
BFS); :func:`bhps_route` runs the requested pairing and reports combined
expansion counts for comparison against unidirectional Dijkstra.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.errors import NoRouteError
from repro.planning.route_graph import LaneRouter, RouteResult, SearchStats


def _reverse_adjacency(adj: Dict[ElementId, List[Tuple[ElementId, float]]]
                       ) -> Dict[ElementId, List[Tuple[ElementId, float]]]:
    rev: Dict[ElementId, List[Tuple[ElementId, float]]] = {
        n: [] for n in adj}
    for u, edges in adj.items():
        for v, w in edges:
            rev[v].append((u, w))
    return rev


def bhps_route(router: LaneRouter, start: ElementId, goal: ElementId,
               forward_bfs: bool = True) -> RouteResult:
    """Bidirectional hybrid search.

    ``forward_bfs=True``: BFS expands from ``start`` while Dijkstra expands
    from ``goal`` over reversed edges; ``False`` swaps the roles. The two
    searches alternate one expansion at a time and stop when a node has
    been settled by both; the best meeting node (minimum summed cost) is
    then selected among the doubly-reached frontier.
    """
    adj = router.adjacency()
    if start not in adj or goal not in adj:
        raise NoRouteError("start or goal lane not in the graph")
    rev = _reverse_adjacency(adj)

    bfs_adj = adj if forward_bfs else rev
    bfs_root = start if forward_bfs else goal
    dij_adj = rev if forward_bfs else adj
    dij_root = goal if forward_bfs else start

    stats = SearchStats()

    # BFS state (hop costs only; converted to metres when stitching).
    bfs_parent: Dict[ElementId, Optional[ElementId]] = {bfs_root: None}
    bfs_queue: deque = deque([bfs_root])
    bfs_done: Dict[ElementId, int] = {bfs_root: 0}

    # Dijkstra state.
    dij_dist: Dict[ElementId, float] = {dij_root: 0.0}
    dij_parent: Dict[ElementId, Optional[ElementId]] = {dij_root: None}
    dij_heap: List[Tuple[float, int, ElementId]] = [(0.0, 0, dij_root)]
    dij_closed: set = set()
    counter = 1

    meeting: Optional[ElementId] = None
    best_meet_cost = float("inf")

    def try_meet(node: ElementId) -> None:
        nonlocal meeting, best_meet_cost
        if node in bfs_done and node in dij_closed:
            cost = bfs_done[node] * 1.0 + dij_dist[node]
            if cost < best_meet_cost:
                best_meet_cost = cost
                meeting = node

    # Alternate expansions until both sides have settled a common node and
    # a few extra rounds have polished the meeting choice.
    polish = 0
    while (bfs_queue or dij_heap) and polish < 25:
        if meeting is not None:
            polish += 1
        if bfs_queue:
            current = bfs_queue.popleft()
            stats.expansions += 1
            for neighbor, _w in bfs_adj[current]:
                if neighbor not in bfs_done:
                    bfs_done[neighbor] = bfs_done[current] + 1
                    bfs_parent[neighbor] = current
                    bfs_queue.append(neighbor)
                    try_meet(neighbor)
        if dij_heap:
            _, _, current = heapq.heappop(dij_heap)
            if current in dij_closed:
                continue
            dij_closed.add(current)
            stats.expansions += 1
            try_meet(current)
            for neighbor, w in dij_adj[current]:
                candidate = dij_dist[current] + w
                if candidate < dij_dist.get(neighbor, float("inf")):
                    dij_dist[neighbor] = candidate
                    dij_parent[neighbor] = current
                    heapq.heappush(dij_heap, (candidate, counter, neighbor))
                    counter += 1
        stats.frontier_peak = max(stats.frontier_peak,
                                  len(bfs_queue) + len(dij_heap))

    if meeting is None:
        raise NoRouteError(f"no route from {start} to {goal}")

    # Stitch: BFS side path root->meeting, Dijkstra side meeting->root.
    bfs_side: List[ElementId] = []
    node: Optional[ElementId] = meeting
    while node is not None:
        bfs_side.append(node)
        node = bfs_parent[node]
    bfs_side.reverse()  # bfs_root ... meeting

    dij_side: List[ElementId] = []
    node = dij_parent[meeting]
    while node is not None:
        dij_side.append(node)
        node = dij_parent[node]
    # dij_side: meeting-next ... dij_root

    if forward_bfs:
        lane_ids = bfs_side + dij_side  # start..meeting..goal
    else:
        lane_ids = list(reversed(dij_side)) + list(reversed(bfs_side))

    cost = _path_cost(adj, lane_ids)
    return RouteResult(lane_ids=lane_ids, cost=cost, stats=stats)


def _path_cost(adj: Dict[ElementId, List[Tuple[ElementId, float]]],
               lane_ids: List[ElementId]) -> float:
    cost = 0.0
    for u, v in zip(lane_ids, lane_ids[1:]):
        for neighbor, w in adj[u]:
            if neighbor == v:
                cost += w
                break
        else:
            raise NoRouteError("stitched path has a broken edge")
    return cost
