"""Aerial + ground image road extraction (Mátyus et al. [27], Figure 1).

The four-phase technique of the paper on our substrate: a synthetic
*aerial raster* of the road surface (rendered from the true map with blur,
noise, and a small geo-registration offset), a coarse prior (the
navigation-map reference line, perturbed), ground-level lane observations
from a drive, and a fusion step that aligns the aerial extraction with the
ground evidence. The baseline is the GPS+IMU-only centerline (paper:
0.57 m vs 1.67 m).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.core.hdmap import HDMap
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.polyline import Polyline
from repro.geometry.raster import GridSpec, RasterGrid
from repro.sensors.camera import Camera
from repro.sensors.gnss import GnssSensor
from repro.sensors.base import SensorGrade
from repro.world.traffic import Trajectory


def render_aerial(truth: HDMap, rng: np.random.Generator,
                  resolution: float = 0.4, blur_sigma_px: float = 1.5,
                  noise_sigma: float = 0.15,
                  registration_offset: float = 0.8) -> Tuple[RasterGrid, np.ndarray]:
    """Synthesize an aerial intensity image of the road network.

    Returns the raster and the (unknown to the algorithm) registration
    offset applied, emulating ortho-photo geo-referencing error.
    """
    spec = GridSpec.from_bounds(truth.bounds(), resolution, padding=15.0)
    grid = RasterGrid(spec)
    offset = rng.normal(0.0, registration_offset / np.sqrt(2), size=2)
    for lane in truth.lanes():
        sampled = lane.centerline.resample(resolution).points + offset
        for lateral in np.arange(-lane.width / 2, lane.width / 2 + 1e-6,
                                 resolution * 0.8):
            try:
                shifted = Polyline(sampled).offset(float(lateral))
                grid.set_points(shifted.points, 1.0)
            except Exception:
                continue
    grid.data = ndimage.gaussian_filter(grid.data, blur_sigma_px)
    grid.data += rng.normal(0.0, noise_sigma, size=grid.data.shape)
    return grid, offset


@dataclass
class AerialMapResult:
    centerline: Optional[Polyline]
    error: ErrorStats
    seconds_per_km: float


class AerialGroundMapper:
    """Phases: decode aerial -> extract corridor centre -> fuse ground."""

    def __init__(self, corridor_half_width: float = 12.0,
                 station_step: float = 10.0) -> None:
        self.corridor_half_width = corridor_half_width
        self.station_step = station_step

    # ------------------------------------------------------------------
    def extract_from_aerial(self, aerial: RasterGrid,
                            prior: Polyline) -> Optional[Polyline]:
        """Phase 1-2: intensity-weighted road centre along the prior."""
        pts: List[np.ndarray] = []
        s = 0.0
        step = aerial.spec.resolution
        while s <= prior.length:
            base = prior.point_at(s)
            normal = prior.normal_at(s)
            laterals = np.arange(-self.corridor_half_width,
                                 self.corridor_half_width + step, step)
            positions = base[None, :] + laterals[:, None] * normal[None, :]
            weights = aerial.sample(positions)
            weights = np.clip(weights, 0.0, None)
            if weights.sum() > 1.0:
                centre_lateral = float(np.sum(laterals * weights)
                                       / weights.sum())
                pts.append(base + centre_lateral * normal)
            s += self.station_step
        if len(pts) < 2:
            return None
        return Polyline(np.array(pts))

    # ------------------------------------------------------------------
    def fuse_ground(self, aerial_line: Polyline,
                    ground_points: np.ndarray) -> Polyline:
        """Phase 3-4: correct the aerial extraction's registration bias.

        Ground observations of the road centre (from the drive) directly
        measure the residual lateral offset of the aerial line; the mean
        residual is removed.
        """
        if ground_points.shape[0] < 5:
            return aerial_line
        s_all, d_all = aerial_line.project_batch(ground_points)
        keep = ((s_all > 0.0) & (s_all < aerial_line.length)
                & (np.abs(d_all) < 6.0))
        residuals = d_all[keep]
        if residuals.size < 5:
            return aerial_line
        shift = float(np.mean(residuals))
        return aerial_line.offset(shift, spacing=self.station_step)

    # ------------------------------------------------------------------
    def run(self, truth: HDMap, aerial: RasterGrid, prior: Polyline,
            reference_truth: Polyline, trajectory: Trajectory,
            rng: np.random.Generator) -> AerialMapResult:
        """Full pipeline over one corridor, scored against the true line."""
        import time

        started = time.perf_counter()
        aerial_line = self.extract_from_aerial(aerial, prior)
        if aerial_line is None:
            raise ValueError("aerial extraction failed")
        ground_points = _ground_centre_observations(truth, trajectory, rng)
        fused = self.fuse_ground(aerial_line, ground_points)
        elapsed = time.perf_counter() - started
        errors = np.abs(
            reference_truth.project_batch(fused.resample(20.0).points)[1])
        return AerialMapResult(
            centerline=fused,
            error=error_stats(errors),
            seconds_per_km=elapsed / max(reference_truth.length / 1000.0, 1e-9),
        )


def gps_imu_baseline(reference_truth: Polyline, trajectory: Trajectory,
                     rng: np.random.Generator,
                     grade: SensorGrade = SensorGrade.AUTOMOTIVE) -> ErrorStats:
    """Baseline: centerline taken from the GPS+IMU track alone.

    The probe lateral wander plus GNSS bias lands this in the paper's
    ~1.7 m regime.
    """
    gnss = GnssSensor(grade, rate_hz=2.0)
    fixes = gnss.measure(trajectory, rng)
    positions = (np.asarray([f.position for f in fixes], dtype=float)
                 if fixes else np.zeros((0, 2)))
    errors = np.abs(reference_truth.project_batch(positions)[1])
    return error_stats(errors)


def _ground_centre_observations(truth: HDMap, trajectory: Trajectory,
                                rng: np.random.Generator,
                                stride_s: float = 1.0) -> np.ndarray:
    """Road-centre points observed from the vehicle (camera lane offsets).

    The camera measures the vehicle's offset from its lane centre; adding
    the lane's known offset pattern recovers points on the *road* centre
    reference. We emulate the output: true road-centre points with small
    observation noise.
    """
    camera = Camera()
    pts = []
    t = trajectory.start_time
    while t <= trajectory.end_time:
        pose = trajectory.pose_at(t)
        obs = camera.observe_lanes(truth, pose, rng, t=t)
        if obs is not None and obs.lane_centre_offset is not None:
            lane, d = truth.nearest_lane(pose.x, pose.y)
            if lane.segment is not None:
                segment = truth.get(lane.segment)
                s, _ = segment.reference_line.project((pose.x, pose.y))  # type: ignore[union-attr]
                base = segment.reference_line.point_at(s)  # type: ignore[union-attr]
                noise = rng.normal(0.0, 0.15, size=2)
                pts.append(base + noise)
        t += stride_s
    return np.array(pts) if pts else np.zeros((0, 2))
