"""repro.obs: unified tracing, metrics registry, and structured events.

Covers the observability layer end to end: histogram merge semantics,
the unified registry with serve+ingest+perf under one export, Prometheus
text validity, trace propagation across thread boundaries (N concurrent
clients must yield N disjoint well-parented span trees), the structured
event log's trace correlation, and the acceptance demo — one
observation's journey from ``ObservationBus.enqueue`` through the stage
pipeline to ``PatchPublisher`` and ``ChangesSince`` visibility,
reconstructed as a span tree whose durations account for the measured
freshness lag within 10%.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import HDMap, Lane, SignType, TrafficSign
from repro.core.changes import ChangeType
from repro.core.tiles import TileId
from repro.geometry.polyline import straight
from repro.ingest import IngestPipeline, Observation, ObservationKind
from repro.ingest.metrics import IngestMetrics
from repro.ingest.observation import ObservationBatch
from repro.ingest.pipeline import DeadLetterQueue
from repro.obs import (
    EVENT_LOG,
    INFO,
    TRACER,
    WARNING,
    Counter,
    EventLog,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    SpanRecorder,
    Tracer,
    build_tree,
    format_trace,
    get_logger,
    load_spans_jsonl,
    register_perf_registry,
    validate_prometheus_text,
    verify_spans,
)
from repro.serve import GetTile, IngestPatch, MapService
from repro.serve.api import ChangesSince
from repro.serve.metrics import ServiceMetrics
from repro.storage import TileStore
from repro.update.distribution import MapDistributionServer


@pytest.fixture(autouse=True)
def _reset_obs():
    """Every test starts from disabled tracing and an empty event log."""
    TRACER.configure(enabled=False, sample_rate=1.0, reset=True)
    TRACER.recorder.jsonl_path = None
    EVENT_LOG.clear()
    EVENT_LOG.level = INFO
    EVENT_LOG.jsonl_path = None
    yield
    TRACER.configure(enabled=False, sample_rate=1.0, reset=True)
    EVENT_LOG.clear()


def _sign_world():
    hdmap = HDMap("obs-test")
    hdmap.create(Lane, centerline=straight([0, 0], [100, 0]))
    hdmap.create(TrafficSign, position=np.array([50.0, 5.0]),
                 sign_type=SignType.STOP)
    return hdmap


# ----------------------------------------------------------------------
class TestLatencyHistogramMerge:
    def test_merge_folds_counts_sum_and_extremes(self):
        a = LatencyHistogram((0.01, 0.1, 1.0))
        b = LatencyHistogram((0.01, 0.1, 1.0))
        for v in (0.005, 0.05):
            a.record(v)
        for v in (0.5, 2.0):
            b.record(v)
        out = a.merge(b)
        assert out is a
        assert a.count == 4
        assert a.sum_s == pytest.approx(0.005 + 0.05 + 0.5 + 2.0)
        assert a.min_s == pytest.approx(0.005)
        assert a.max_s == pytest.approx(2.0)
        assert a.bucket_counts() == [1, 1, 1, 1]
        # b is untouched by the fold
        assert b.count == 2

    def test_merge_rejects_mismatched_bounds(self):
        a = LatencyHistogram((0.01, 0.1))
        b = LatencyHistogram((0.01, 0.2))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_merge_empty_is_identity(self):
        a = LatencyHistogram((0.01, 0.1))
        a.record(0.05)
        a.merge(LatencyHistogram((0.01, 0.1)))
        assert a.count == 1
        assert a.min_s == pytest.approx(0.05)

    def test_per_worker_stage_series_aggregate_in_export(self):
        m = IngestMetrics()
        m.record_stage("fuse", 0.001, worker=0)
        m.record_stage("fuse", 0.002, worker=1)
        m.record_stage("fuse", 0.003, worker=1)
        assert m.stage_histogram("fuse", worker=0).count == 1
        assert m.stage_histogram("fuse", worker=1).count == 2
        merged = m.merged_stage_histogram("fuse")
        assert merged.count == 3
        assert merged.sum_s == pytest.approx(0.006)
        # as_dict keeps the pre-per-worker shape, now via merge()
        assert m.as_dict()["stage_latency"]["fuse"]["count"] == 3


class TestGaugeCompat:
    def test_gauge_moved_to_obs_and_reexported(self):
        from repro.ingest import Gauge as ingest_pkg_gauge
        from repro.ingest.metrics import Gauge as ingest_gauge
        from repro.obs.metrics import Gauge as obs_gauge
        from repro.serve.metrics import Gauge as serve_gauge
        assert obs_gauge is Gauge
        assert ingest_gauge is obs_gauge
        assert ingest_pkg_gauge is obs_gauge
        assert serve_gauge is obs_gauge


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_register_and_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("a.count")
        g = reg.gauge("a.depth")
        h = reg.histogram("a.latency", bounds=(0.1, 1.0))
        c.add(3)
        g.set(7)
        h.record(0.05)
        snap = reg.snapshot()
        assert snap["a.count"] == 3
        assert snap["a.depth"] == 7
        assert snap["a.latency"]["count"] == 1
        assert json.loads(reg.to_json())["a.count"] == 3

    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.register("x.y", Counter())
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x.y", Counter())

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(ValueError, match="already registered as"):
            reg.gauge("x.y")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.register("bad name", Counter())

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_collector_metrics_merge_and_statics_win(self):
        reg = MetricsRegistry()
        static = reg.counter("dyn.x")
        static.add(5)
        reg.register_collector(lambda: {"dyn.x": 99, "dyn.y": 1})
        snap = reg.snapshot()
        assert snap["dyn.x"] == 5  # static registration wins
        assert snap["dyn.y"] == 1
        assert reg.names() == ["dyn.x", "dyn.y"]

    def test_prometheus_export_is_valid_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests.GetTile.ok").add(2)
        reg.gauge("ingest.in_flight").set(3)
        h = reg.histogram("serve.latency.GetTile", bounds=(0.001, 0.01))
        h.record(0.0005)
        h.record(0.5)
        text = reg.to_prometheus()
        assert validate_prometheus_text(text) == []
        assert "# TYPE serve_requests_GetTile_ok counter" in text
        assert "serve_requests_GetTile_ok 2" in text
        assert "# TYPE ingest_in_flight gauge" in text
        assert "# TYPE serve_latency_GetTile histogram" in text
        assert 'serve_latency_GetTile_bucket{le="+Inf"} 2' in text
        assert "serve_latency_GetTile_count 2" in text

    def test_validator_catches_broken_text(self):
        bad = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="0.1"} 5',
            'h_bucket{le="+Inf"} 3',   # not cumulative
            "h_count 9",               # disagrees with +Inf
            "not a sample line !!",
        ]) + "\n"
        problems = validate_prometheus_text(bad)
        assert any("not cumulative" in p for p in problems)
        assert any("_count" in p or "!= +Inf" in p for p in problems)
        assert any("malformed sample" in p for p in problems)
        assert validate_prometheus_text(
            "x_total 1e-05\n# TYPE g gauge\ng -2.5\n") == []

    def test_missing_inf_bucket_flagged(self):
        assert any("missing +Inf" in p for p in validate_prometheus_text(
            '# TYPE h histogram\nh_bucket{le="1"} 1\nh_count 1\n'))

    def test_perf_registry_surfaces_via_duck_typing(self):
        class FakePerf:
            def snapshot(self):
                return {"grid.query_box": {"calls": 4, "total_ns": 1000.0,
                                           "mean_ns": 250.0}}

        reg = MetricsRegistry()
        register_perf_registry(reg, FakePerf())
        snap = reg.snapshot()
        assert snap["perf.grid.query_box.calls"] == 4
        assert snap["perf.grid.query_box.total_ns"] == 1000.0
        assert validate_prometheus_text(reg.to_prometheus()) == []

    def test_serve_ingest_perf_under_one_registry(self):
        """The tentpole invariant: one registry, every subsystem."""
        class FakePerf:
            def snapshot(self):
                return {"lidar.scan": {"calls": 1, "total_ns": 5.0,
                                       "mean_ns": 5.0}}

        reg = MetricsRegistry()
        sm = ServiceMetrics()
        sm.register_into(reg)
        sm.record("GetTile", "ok", 0.004)
        im = IngestMetrics()
        im.register_into(reg)
        im.record_stage("validate", 0.001, worker=0)
        im.record_freshness(0.2)
        register_perf_registry(reg, FakePerf())
        EVENT_LOG.register_into(reg, prefix="testlog")
        names = reg.names()
        assert "serve.latency.GetTile" in names
        assert "serve.requests.GetTile.ok" in names
        assert "ingest.stage.validate" in names
        assert "ingest.freshness" in names
        assert "perf.lidar.scan.calls" in names
        assert "testlog.events.error" in names
        text = reg.to_prometheus()
        assert validate_prometheus_text(text) == []
        assert "serve_latency_GetTile_sum" in text
        assert "ingest_freshness_count 1" in text


# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracing_records_nothing(self):
        with TRACER.start_trace("root") as root:
            with TRACER.span("child") as child:
                pass
        assert root.context is None and child.context is None
        assert TRACER.recorder.spans() == []

    def test_spans_nest_and_record(self):
        TRACER.configure(enabled=True)
        with TRACER.start_trace("root", kind="r") as root:
            trace_id = root.trace_id
            with TRACER.span("child") as child:
                child.set("k", 1)
        spans = TRACER.recorder.trace(trace_id)
        assert [s.name for s in spans] == ["child", "root"]
        child, root = spans
        assert child.parent_id == root.span_id
        assert child.attrs["k"] == 1
        assert root.parent_id is None
        assert root.duration_s >= child.duration_s >= 0.0
        tree = TRACER.recorder.span_tree(trace_id)
        assert len(tree) == 1
        assert tree[0]["name"] == "root"
        assert tree[0]["children"][0]["name"] == "child"

    def test_span_outside_trace_is_noop(self):
        TRACER.configure(enabled=True)
        with TRACER.span("orphan") as span:
            pass
        assert span.context is None
        assert TRACER.recorder.spans() == []

    def test_deterministic_sampling(self):
        TRACER.configure(enabled=True, sample_rate=0.5, reset=True)
        sampled = [TRACER.start_trace(f"r{i}").context is not None
                   for i in range(8)]
        assert sampled == [True, False] * 4
        TRACER.configure(sample_rate=0.0, reset=True)
        assert TRACER.start_trace("never").context is None
        assert TRACER.propagate() is None

    def test_exception_recorded_and_span_closed(self):
        TRACER.configure(enabled=True)
        with pytest.raises(RuntimeError):
            with TRACER.start_trace("boom"):
                raise RuntimeError("kaput")
        (span,) = TRACER.recorder.spans()
        assert "RuntimeError: kaput" in span.attrs["error"]
        assert span.end_s is not None

    def test_propagate_continue_from_crosses_threads(self):
        TRACER.configure(enabled=True)
        carried = []
        with TRACER.start_trace("producer") as root:
            carried.append(TRACER.propagate())

        def worker():
            with TRACER.continue_from(carried[0], "consumer") as span:
                span.set("thread", threading.current_thread().name)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        spans = TRACER.recorder.trace(root.trace_id)
        by_name = {s.name: s for s in spans}
        assert by_name["consumer"].parent_id == by_name["producer"].span_id
        assert verify_spans([s.as_dict() for s in spans]) == []

    def test_continue_from_backdates_queue_wait(self):
        clock = [100.0]
        tracer = Tracer(SpanRecorder(16), enabled=True,
                        clock=lambda: clock[0])
        with tracer.start_trace("root") as root:
            ctx = root.context
        clock[0] = 105.0
        with tracer.continue_from(ctx, "wait", start_s=101.0):
            pass
        wait = [s for s in tracer.recorder.spans() if s.name == "wait"][0]
        assert wait.start_s == 101.0
        assert wait.duration_s == pytest.approx(4.0)

    def test_ring_buffer_wraps_and_counts_drops(self):
        tracer = Tracer(SpanRecorder(capacity=3), enabled=True)
        for i in range(5):
            with tracer.start_trace(f"s{i}"):
                pass
        spans = tracer.recorder.spans()
        assert [s.name for s in spans] == ["s3", "s4", "s2"] or \
            [s.name for s in spans] == ["s2", "s3", "s4"]
        assert tracer.recorder.dropped == 2

    def test_jsonl_roundtrip_and_tooling(self, tmp_path):
        TRACER.configure(enabled=True)
        with TRACER.start_trace("root") as root:
            with TRACER.span("a"):
                pass
            with TRACER.span("b"):
                pass
        path = tmp_path / "spans.jsonl"
        assert TRACER.recorder.dump_jsonl(str(path)) == 3
        spans = load_spans_jsonl(str(path))
        assert verify_spans(spans) == []
        roots = build_tree(spans)
        assert len(roots) == 1
        assert {c["name"] for c in roots[0]["children"]} == {"a", "b"}
        text = format_trace(spans)
        assert "root" in text and "  a" in text
        assert root.trace_id == spans[0]["trace_id"]

    def test_verify_spans_flags_violations(self):
        spans = [
            {"name": "u", "trace_id": "t1", "span_id": "1",
             "parent_id": None, "start_s": 0.0, "end_s": None},
            {"name": "o", "trace_id": "t1", "span_id": "2",
             "parent_id": "999", "start_s": 0.0, "end_s": 1.0},
            {"name": "n", "trace_id": "t1", "span_id": "3",
             "parent_id": None, "start_s": 2.0, "end_s": 1.0},
        ]
        problems = verify_spans(spans)
        assert any("unfinished" in p for p in problems)
        assert any("unparented" in p for p in problems)
        assert any("negative duration" in p for p in problems)


# ----------------------------------------------------------------------
class TestEventLog:
    def test_level_filtering_and_counts(self):
        log = EventLog(level=WARNING)
        logger = get_logger("t", log)
        logger.info("dropped")
        logger.warning("kept", code=7)
        logger.error("kept_too")
        events = log.events()
        assert [e["event"] for e in events] == ["kept", "kept_too"]
        assert events[0]["code"] == 7
        assert events[0]["logger"] == "t"
        assert log.counts_by_level["warning"].value == 1
        assert log.counts_by_level["error"].value == 1
        assert log.counts_by_level["info"].value == 0

    def test_events_filter_by_name_and_level(self):
        log = EventLog(level=INFO)
        logger = get_logger("t", log)
        logger.info("a")
        logger.error("a")
        logger.error("b")
        assert len(log.events(event="a")) == 2
        assert len(log.events(min_level=WARNING, event="a")) == 1

    def test_trace_correlation(self):
        TRACER.configure(enabled=True)
        log = EventLog()
        with TRACER.start_trace("op") as span:
            log.log(INFO, "inside")
        log.log(INFO, "outside")
        inside, outside = log.events()
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
        assert "trace_id" not in outside

    def test_jsonl_sink_and_dump(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(jsonl_path=str(sink))
        get_logger("t", log).info("hello", n=1)
        entry = json.loads(sink.read_text().strip())
        assert entry["event"] == "hello" and entry["n"] == 1
        out = tmp_path / "dump.jsonl"
        assert log.dump_jsonl(str(out)) == 1

    def test_registry_export_of_level_counters(self):
        reg = MetricsRegistry()
        log = EventLog()
        log.register_into(reg)
        get_logger("t", log).error("x")
        assert reg.snapshot()["log.events.error"] == 1

    def test_ring_is_bounded(self):
        log = EventLog(capacity=3)
        for i in range(6):
            log.log(INFO, f"e{i}")
        assert [e["event"] for e in log.events()] == ["e3", "e4", "e5"]


# ----------------------------------------------------------------------
class TestPipelineEventLogging:
    def test_dead_letter_writes_structured_event(self):
        dlq = DeadLetterQueue()
        batch = ObservationBatch(tile=TileId(0, 0), partition=0,
                                 observations=[Observation(
                                     kind=ObservationKind.DETECTION,
                                     position=(1.0, 1.0), sigma=0.5,
                                     vehicle="v0", seq=1, t=0.0)])
        batch.attempts = 3
        dlq.push(batch, "IngestError: poison")
        (event,) = EVENT_LOG.events(event="batch_dead_lettered")
        assert event["level"] == "error"
        assert event["logger"] == "ingest.pipeline"
        assert event["reason"] == "IngestError: poison"
        assert event["attempts"] == 3

    def test_retries_and_dlq_logged_in_running_pipeline(self):
        server = MapDistributionServer(_sign_world())
        pipe = IngestPipeline(server, n_workers=1, n_partitions=1,
                              max_attempts=3, backoff_base_s=0.001)
        with pipe:
            pipe.submit(Observation(kind=ObservationKind.DETECTION,
                                    position=(10.0, 10.0), sigma=-1.0,
                                    vehicle="v0", seq=0, t=0.0))  # poison
            assert pipe.drain(10.0)
        assert len(EVENT_LOG.events(event="batch_retry")) == 2
        assert len(EVENT_LOG.events(event="batch_dead_lettered")) == 1

    def test_load_shedding_logged_by_service(self):
        server = MapDistributionServer(_sign_world())
        store = TileStore.build(server.snapshot(), tile_size=250.0)
        service = MapService(server, store, n_workers=1)
        # Not started: the queue fills, then overflow is rejected.
        from repro.serve.admission import AdmissionPolicy
        service.queue.policy = AdmissionPolicy(max_queue=1)
        assert service.submit(GetTile(TileId(0, 0))) is not None
        service.submit(GetTile(TileId(0, 0)))
        assert len(EVENT_LOG.events(event="request_rejected")) == 1


# ----------------------------------------------------------------------
class TestThreadedTraceIsolation:
    def test_n_clients_yield_n_disjoint_well_parented_trees(self):
        """Interleaved GetTile/IngestPatch from N threads must produce N
        disjoint traces, each a single well-parented tree."""
        TRACER.configure(enabled=True, capacity=4096, reset=True)
        n_clients = 4
        world = _sign_world()
        server = MapDistributionServer(world.copy())
        store = TileStore.build(world, tile_size=250.0)
        trace_ids = {}

        def client(i):
            from repro.core import MapPatch
            sign = TrafficSign(id=server.new_element_id("sign"),
                               position=np.array([10.0 + i, 40.0 + 9 * i]),
                               sign_type=SignType.DIRECTION)
            with TRACER.start_trace("client", client=i) as root:
                trace_ids[i] = root.trace_id
                for _ in range(3):
                    service.request(GetTile(TileId(0, 0)))
                service.request(IngestPatch(
                    MapPatch(source=f"client-{i}").add(sign)))

        with MapService(server, store, n_workers=3) as service:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert len(set(trace_ids.values())) == n_clients
        all_spans = [s.as_dict() for s in TRACER.recorder.spans()]
        assert verify_spans(all_spans) == []
        for i, trace_id in trace_ids.items():
            spans = [s for s in all_spans if s["trace_id"] == trace_id]
            roots = build_tree(spans)
            assert len(roots) == 1, f"client {i} trace has multiple roots"
            root = roots[0]
            assert root["name"] == "client"
            assert root["attrs"]["client"] == i
            kinds = sorted(c["name"] for c in root["children"])
            assert kinds == ["serve.request.GetTile"] * 3 + \
                ["serve.request.IngestPatch"]
            # cache lookups nest under the serve span, not the root
            gettile = [c for c in root["children"]
                       if c["name"] == "serve.request.GetTile"]
            assert all(any(g["name"] == "serve.cache.get"
                           for g in c["children"]) for c in gettile)


# ----------------------------------------------------------------------
class TestObservationJourney:
    """Acceptance demo: one observation, enqueue -> ChangesSince."""

    @pytest.fixture()
    def journey(self):
        TRACER.configure(enabled=True, capacity=4096, reset=True)
        server = MapDistributionServer(_sign_world())
        pipe = IngestPipeline(server, tile_size=250.0, n_workers=1,
                              n_partitions=1, max_batch=64,
                              stage_latency_s=0.05)
        # Ten clean detections of a NEW sign at (20, 5) — far from the
        # prior STOP sign at (50, 5) — submitted *before* the pipeline
        # starts, so they form exactly one batch whose oldest observation
        # anchors both the freshness lag and the trace.
        for i in range(10):
            pipe.submit(Observation(kind=ObservationKind.DETECTION,
                                    position=(20.0, 5.0), sigma=0.5,
                                    vehicle=f"v{i}", seq=i, t=float(i)))
        with pipe:
            assert pipe.drain(20.0)
        return server, pipe

    def test_span_tree_reconstructs_and_attributes_freshness(self, journey):
        server, pipe = journey
        assert pipe.metrics.patches_published.value == 1
        delta = server.delta_since(0)
        added = [c for c in delta.changes
                 if c.change_type is ChangeType.ADDED]
        assert len(added) == 1

        # The oldest observation's trace carries the whole journey.
        spans = TRACER.recorder.spans()
        enqueues = [s for s in spans if s.name == "ingest.enqueue"]
        trace_id = enqueues[0].trace_id
        trace = {s.name: s for s in TRACER.recorder.trace(trace_id)}
        assert {"ingest.enqueue", "ingest.wait", "ingest.batch",
                "ingest.publish"} <= set(trace)
        for stage in ("validate", "associate", "fuse", "classify", "emit"):
            assert f"ingest.stage.{stage}" in trace
        # Parenting: wait/batch continue from the enqueue span; stage and
        # publish spans nest inside the batch span.
        root = trace["ingest.enqueue"]
        assert trace["ingest.wait"].parent_id == root.span_id
        assert trace["ingest.batch"].parent_id == root.span_id
        assert trace["ingest.publish"].parent_id == \
            trace["ingest.batch"].span_id
        assert trace["ingest.stage.fuse"].parent_id == \
            trace["ingest.batch"].span_id
        tree = TRACER.recorder.span_tree(trace_id)
        assert len(tree) == 1 and tree[0]["name"] == "ingest.enqueue"
        assert verify_spans(
            [s.as_dict() for s in TRACER.recorder.trace(trace_id)]) == []

        # Freshness attribution: the queue wait plus the batch processing
        # must account for the measured freshness-lag sample within 10%.
        lag = pipe.metrics.freshness.max_s
        assert pipe.metrics.freshness.count == 1
        attributed = trace["ingest.wait"].duration_s + \
            trace["ingest.batch"].duration_s
        assert attributed == pytest.approx(lag, rel=0.10)
        # and the batch-stage time is dominated by the modelled I/O
        assert trace["ingest.batch"].duration_s >= 0.05

    def test_changes_since_joins_the_same_trace(self, journey):
        server, pipe = journey
        store = TileStore.build(server.snapshot(), tile_size=250.0)
        enq = [s for s in TRACER.recorder.spans()
               if s.name == "ingest.enqueue"][0]
        with MapService(server, store, n_workers=1) as service:
            with TRACER.continue_from(enq.context, "verify.changes_since"):
                resp = service.request(ChangesSince(0))
        assert resp.ok
        assert any(c.change_type is ChangeType.ADDED
                   for c in resp.payload.changes)
        names = {s.name for s in TRACER.recorder.trace(enq.trace_id)}
        # the sync that makes the patch visible is part of the same tree
        assert "verify.changes_since" in names
        assert "serve.request.ChangesSince" in names
        assert verify_spans([s.as_dict() for s in
                             TRACER.recorder.trace(enq.trace_id)]) == []

    def test_publish_span_carries_version_and_key(self, journey):
        server, pipe = journey
        publish = [s for s in TRACER.recorder.spans()
                   if s.name == "ingest.publish"]
        assert len(publish) == 1
        span = publish[0]
        assert span.attrs["published"] is True
        assert span.attrs["duplicate"] is False
        assert ":add:" in span.attrs["key"]
        assert span.attrs["version"] == server.version
