"""Map tiling: fixed-size square tiles over the map extent.

Tiling serves two surveyed needs: scalable update workloads ("partitioning
the workload and aggregating results from smaller areas", Pannen et al.
[44]) and streaming/storage locality for the enormous map sizes the survey
flags as an open data-management problem [73].
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.elements import MapElement
from repro.core.hdmap import HDMap


@dataclass(frozen=True, order=True)
class TileId:
    """Integer tile coordinates at a given tile size."""

    tx: int
    ty: int

    def __str__(self) -> str:
        return f"tile({self.tx},{self.ty})"


def _rendezvous_score(tile: TileId, shard: int) -> int:
    digest = hashlib.blake2b(f"{tile.tx},{tile.ty}|{shard}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def consistent_hash_owner(tile_id: TileId, n_shards: int) -> int:
    """Stable tile→shard assignment via rendezvous (HRW) hashing.

    Every ``(tile, shard)`` pair gets a deterministic score; the shard
    with the highest score owns the tile. Growing the cluster from N to
    N+1 shards therefore moves a tile only when the *new* shard wins its
    score contest — an expected 1/(N+1) fraction of tiles — while every
    other assignment is untouched. That bounded movement is what lets a
    live cluster rebalance by replaying only the moved tiles' state
    instead of reshuffling everything (modulo hashing would move
    ~N/(N+1) of them).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return 0
    return max(range(n_shards),
               key=lambda shard: _rendezvous_score(tile_id, shard))


def ownership_map(tiles: Iterable[TileId],
                  n_shards: int) -> Dict[TileId, int]:
    """``{tile: owning shard}`` for a whole tile set (one hash pass)."""
    return {tile: consistent_hash_owner(tile, n_shards) for tile in tiles}


class TileScheme:
    """Partition of the plane into ``tile_size``-metre squares."""

    def __init__(self, tile_size: float = 500.0) -> None:
        if tile_size <= 0:
            raise ValueError("tile_size must be positive")
        self.tile_size = float(tile_size)

    def tile_of(self, x: float, y: float) -> TileId:
        return TileId(int(np.floor(x / self.tile_size)),
                      int(np.floor(y / self.tile_size)))

    def tile_bounds(self, tile: TileId) -> Tuple[float, float, float, float]:
        x0 = tile.tx * self.tile_size
        y0 = tile.ty * self.tile_size
        return (x0, y0, x0 + self.tile_size, y0 + self.tile_size)

    def tiles_for_bounds(self, bounds: Tuple[float, float, float, float]
                         ) -> List[TileId]:
        min_x, min_y, max_x, max_y = bounds
        t0 = self.tile_of(min_x, min_y)
        t1 = self.tile_of(max_x, max_y)
        return [
            TileId(tx, ty)
            for tx in range(t0.tx, t1.tx + 1)
            for ty in range(t0.ty, t1.ty + 1)
        ]

    def partition(self, hdmap: HDMap) -> Dict[TileId, List[MapElement]]:
        """Assign every spatial element to the tile of its bounds centre."""
        assignment: Dict[TileId, List[MapElement]] = {}
        for element in hdmap.elements():
            try:
                min_x, min_y, max_x, max_y = element.bounds()
            except NotImplementedError:
                continue  # regulatory elements are not spatial
            tile = self.tile_of((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
            assignment.setdefault(tile, []).append(element)
        return assignment

    def coverage(self, hdmap: HDMap) -> List[TileId]:
        """All tiles intersected by the map's bounds."""
        return self.tiles_for_bounds(hdmap.bounds())
