"""Length-prefixed RPC between the router and shard processes.

Wire format, chosen for debuggability over cleverness: every frame is a
fixed 13-byte header — ``!QBI`` request id (8 bytes) + frame kind
(1 byte) + payload length (4 bytes) — followed by the body. Two frame
kinds exist:

- ``KIND_PICKLE`` (0): the body is a pickled object. Requests carry
  ``(op, payload)`` tuples; replies carry ``("ok", result)`` or
  ``("err", message)``.
- ``KIND_RAW_RESPONSE`` (1): an OK reply whose payload is raw bytes —
  a fixed ``!qid`` meta block (served version, staleness, handler
  latency) followed by the payload verbatim. Shards use this to forward
  encoded-tile pack slices to the router without a pickle round-trip:
  the payload ``memoryview`` is written straight from the mmap to the
  socket and never copied into a pickle buffer.

The request id is echoed back in the reply header, so a router that
timed out on a slow shard and moved on can recognise and discard the
late reply instead of mis-attributing it to the next request — without
that, one slow reply would desynchronise the connection forever.

Failure taxonomy (what the router's failover logic keys on):

- :class:`ShardTimeout` — the reply did not arrive inside the call
  timeout. The shard may be slow or wedged; the request may or may not
  have been applied (ambiguity the router must resolve before retrying
  a write).
- :class:`ShardDead` — the peer closed the socket or the read hit a
  reset: the process is gone. Reads fail over to a replica; writes are
  re-driven against a restarted primary rebuilt from the journal.
- :class:`RpcError` — the shard handled the request and raised; the
  error travelled back cleanly (no failover, the shard is healthy).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional, Tuple

from repro.serve.api import Response, Status

_HEADER = struct.Struct("!QBI")

KIND_PICKLE = 0
KIND_RAW_RESPONSE = 1

#: meta block of a raw response: served version (signed — REJECTED/SHED
#: carry −1), staleness in versions, handler latency in seconds
_RAW_META = struct.Struct("!qid")


class RpcError(Exception):
    """The remote handler raised; the shard itself is healthy."""


class ShardDead(Exception):
    """The shard process is gone (EOF / reset on its socket)."""


class ShardTimeout(Exception):
    """No reply within the call timeout; the shard may be wedged."""


def send_frame(sock: socket.socket, request_id: int, body: Any) -> None:
    """Pickle ``body`` and write one framed message."""
    raw = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        sock.sendall(_HEADER.pack(request_id, KIND_PICKLE, len(raw)) + raw)
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ShardDead(f"send failed: {exc}") from None


def send_raw_response(sock: socket.socket, request_id: int,
                      response: Response) -> None:
    """Write one OK reply whose payload ships as raw bytes.

    The payload (``bytes``/``bytearray``/``memoryview`` — e.g. a pack
    mmap slice) is written directly after the meta block, so a zero-copy
    tile view goes mmap → socket without ever entering a pickle buffer.
    """
    payload = memoryview(response.payload)
    meta = _RAW_META.pack(response.version, response.staleness,
                          response.latency_s)
    try:
        sock.sendall(_HEADER.pack(request_id, KIND_RAW_RESPONSE,
                                  _RAW_META.size + payload.nbytes) + meta)
        sock.sendall(payload)
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ShardDead(f"send failed: {exc}") from None


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            raise ShardTimeout("recv timed out") from None
        except (ConnectionResetError, OSError) as exc:
            raise ShardDead(f"recv failed: {exc}") from None
        if not chunk:
            raise ShardDead("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[int, Any]:
    """Read one framed message; returns ``(request_id, body)``.

    Raw-response frames are decoded into the same ``("ok", Response)``
    shape a pickled reply carries, so callers handle both uniformly.
    """
    request_id, kind, length = _HEADER.unpack(_recv_exact(sock,
                                                          _HEADER.size))
    raw = _recv_exact(sock, length)
    if kind == KIND_RAW_RESPONSE:
        if length < _RAW_META.size:
            raise ShardDead(f"short raw frame ({length} bytes)")
        version, staleness, latency_s = _RAW_META.unpack(
            raw[:_RAW_META.size])
        return request_id, ("ok", Response(
            Status.OK, payload=raw[_RAW_META.size:], version=version,
            latency_s=latency_s, staleness=staleness))
    if kind != KIND_PICKLE:
        raise ShardDead(f"unknown frame kind {kind}")
    return request_id, pickle.loads(raw)


class RpcConnection:
    """The router's end of one shard socket: lockstep request/reply.

    One request is in flight at a time (callers serialize through the
    shard handle's lock). Late replies from a previous timed-out request
    are recognised by id and discarded, so a timeout does not poison the
    stream for the caller that follows.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._next_id = 1

    def call(self, op: str, payload: Any = None,
             timeout_s: Optional[float] = None) -> Any:
        request_id = self._next_id
        self._next_id += 1
        self._sock.settimeout(timeout_s)
        send_frame(self._sock, request_id, (op, payload))
        while True:
            reply_id, body = recv_frame(self._sock)
            if reply_id != request_id:
                continue  # stale reply from a timed-out predecessor
            status, result = body
            if status == "err":
                raise RpcError(str(result))
            return result

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def serve_connection(sock: socket.socket, dispatch) -> None:
    """Shard-side loop: read frames, dispatch, reply until EOF.

    ``dispatch(op, payload)`` returns the result or raises; exceptions
    are shipped back as ``("err", message)`` so a handler bug never
    kills the shard loop. A dispatch that calls ``os._exit`` (the
    injected-crash fault) simply never replies.
    """
    sock.settimeout(None)
    while True:
        try:
            request_id, (op, payload) = recv_frame(sock)
        except (ShardDead, ShardTimeout):
            return
        if op == "shutdown":
            send_frame(sock, request_id, ("ok", None))
            return
        try:
            result = dispatch(op, payload)
        except Exception as exc:  # ship the failure, keep serving
            try:
                send_frame(sock, request_id,
                           ("err", f"{type(exc).__name__}: {exc}"))
            except ShardDead:
                return
            continue
        try:
            if isinstance(result, Response) and result.status is Status.OK \
                    and isinstance(result.payload,
                                   (bytes, bytearray, memoryview)):
                send_raw_response(sock, request_id, result)
            else:
                send_frame(sock, request_id, ("ok", result))
        except ShardDead:
            return
