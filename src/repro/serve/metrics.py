"""Serving metrics: thread-safe counters and latency histograms.

Modeled on :class:`~repro.storage.tilestore.TileStoreStats` but built for
concurrent writers: every mutation happens under a lock, and ``as_dict()``
exports a consistent point-in-time view for dashboards/CLI output. The
service keeps one :class:`LatencyHistogram` and a counter per request kind
plus global admission counters, which together give the per-request-type
latency distribution, QPS, and error/shed rates of a run.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


#: Log-spaced bucket upper bounds (seconds): 0.1 ms .. 10 s, then +inf.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Quantiles are resolved to the upper bound of the containing bucket
    (a conservative estimate), which is what fleet SLO reporting wants —
    but the exact observed min/max are tracked alongside the buckets, and
    every quantile is clamped to the observed max so sparse data (one
    sample per bucket) is not overstated by a whole bucket width.
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds or DEFAULT_BOUNDS)
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self._total_s = 0.0
        self._count = 0
        self._min_s = float("inf")
        self._max_s = 0.0

    def record(self, seconds: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._total_s += seconds
            self._count += 1
            if seconds < self._min_s:
                self._min_s = seconds
            if seconds > self._max_s:
                self._max_s = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean_s(self) -> float:
        with self._lock:
            return self._total_s / self._count if self._count else 0.0

    @property
    def min_s(self) -> float:
        """Exact smallest recorded latency (0.0 when empty)."""
        with self._lock:
            return self._min_s if self._count else 0.0

    @property
    def max_s(self) -> float:
        """Exact largest recorded latency (0.0 when empty)."""
        with self._lock:
            return self._max_s

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-th percentile,
        clamped to the exact observed maximum."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            max_s = self._max_s
        if total == 0:
            return 0.0
        rank = q / 100.0 * total
        running = 0
        for i, c in enumerate(counts):
            running += c
            if running >= rank:
                bound = self.bounds[i] if i < len(self.bounds) \
                    else float("inf")
                return min(bound, max_s)
        return max_s

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time export: count, mean, quantiles, exact min/max."""
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "p50_s": self.percentile(50.0),
            "p95_s": self.percentile(95.0),
            "p99_s": self.percentile(99.0),
        }

    def as_dict(self) -> Dict[str, float]:
        return self.snapshot()


#: Wider bounds for map-freshness lag (observation enqueue -> served
#: version): 10 ms .. 60 s, then +inf.
FRESHNESS_BOUNDS: Tuple[float, ...] = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 60.0,
)


class ServiceMetrics:
    """Per-request-type latency/outcome metrics plus admission counters.

    ``freshness`` is the map-freshness lag histogram: the wall time from a
    fleet observation entering the ingestion pipeline to the moment the
    resulting patch is visible to ``ChangesSince`` on this service. The
    ingest layer feeds it via :meth:`record_freshness`; it stays empty for
    services with no live ingestion behind them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._outcomes: Dict[Tuple[str, str], Counter] = {}
        self.rejected = Counter()   # backpressure at submit
        self.shed = Counter()       # stale low-priority dropped by workers
        self.errors = Counter()
        self.freshness = LatencyHistogram(FRESHNESS_BOUNDS)
        self._cache = None

    def attach_cache(self, cache) -> None:
        """Surface a tile cache's counters in :meth:`snapshot`."""
        self._cache = cache

    def record_freshness(self, lag_s: float) -> None:
        """Record one observation-enqueue -> served-version lag."""
        self.freshness.record(lag_s)

    def _histogram(self, kind: str) -> LatencyHistogram:
        with self._lock:
            hist = self._latency.get(kind)
            if hist is None:
                hist = self._latency[kind] = LatencyHistogram()
            return hist

    def _outcome(self, kind: str, status: str) -> Counter:
        with self._lock:
            counter = self._outcomes.get((kind, status))
            if counter is None:
                counter = self._outcomes[(kind, status)] = Counter()
            return counter

    def record(self, kind: str, status: str, latency_s: float) -> None:
        self._outcome(kind, status).add()
        if status == "ok":
            self._histogram(kind).record(latency_s)
        elif status == "error":
            self.errors.add()
        elif status == "shed":
            self.shed.add()
        elif status == "rejected":
            self.rejected.add()

    def completed(self) -> int:
        """Requests answered OK across all kinds."""
        with self._lock:
            counters = [c for (_, status), c in self._outcomes.items()
                        if status == "ok"]
        return sum(c.value for c in counters)

    def throughput(self, elapsed_s: float) -> float:
        """OK responses per second over ``elapsed_s``."""
        return self.completed() / elapsed_s if elapsed_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            kinds = sorted(self._latency)
            outcomes = {f"{kind}.{status}": counter.value
                        for (kind, status), counter in
                        sorted(self._outcomes.items())}
        out: Dict[str, object] = {
            "latency": {kind: self._histogram(kind).as_dict()
                        for kind in kinds},
            "outcomes": outcomes,
            "rejected": self.rejected.value,
            "shed": self.shed.value,
            "errors": self.errors.value,
        }
        if self.freshness.count:
            out["freshness"] = self.freshness.snapshot()
        return out

    def snapshot(self) -> Dict[str, object]:
        """as_dict() plus the attached cache's counters.

        The ``cache`` section carries the serving cache's decode counters
        and the serialization-memo ``serialization_hits`` /
        ``serialization_builds`` split, making encoded-payload memoization
        observable per service.
        """
        out = self.as_dict()
        if self._cache is not None:
            out["cache"] = self._cache.as_dict()
        return out
