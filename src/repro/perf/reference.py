"""Frozen pre-optimization kernels, kept verbatim for equivalence + speedup.

Every function here is the hot-path implementation as it existed *before*
the vectorization pass, preserved so that:

- the equivalence tests can assert the optimized kernels produce
  bit-identical outputs on the same rng stream, and
- the benchmark suite can report honest speedups against the real
  predecessor rather than a strawman.

Nothing in the production path imports this module.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import BoundaryType, LaneBoundary
from repro.core.hdmap import HDMap
from repro.geometry.polyline import Polyline
from repro.geometry.transform import SE2
from repro.sensors.lidar import (
    ASPHALT_INTENSITY,
    CURB_HALF_WIDTH,
    OFFROAD_INTENSITY,
    PAINT_HALF_WIDTH,
    GroundReturns,
    LidarScan,
    LidarScanner,
)


# ----------------------------------------------------------------------
# Polyline projection: the scalar per-point loop every consumer ran.
# ----------------------------------------------------------------------
def project_scalar(polyline: Polyline,
                   points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point ``Polyline.project`` loop — what ``project_batch`` replaced."""
    pts = np.asarray(points, dtype=float)
    stations = np.empty(pts.shape[0])
    laterals = np.empty(pts.shape[0])
    for i, p in enumerate(pts):
        s, d = polyline.project(p)
        stations[i] = s
        laterals[i] = d
    return stations, laterals


# ----------------------------------------------------------------------
# Point-to-segments distance: the unchunked (P, S) matrix version.
# ----------------------------------------------------------------------
def points_to_segments_min_distance_reference(points: np.ndarray,
                                              a: np.ndarray,
                                              b: np.ndarray) -> np.ndarray:
    d = b - a  # (S, 2)
    denom = np.einsum("ij,ij->i", d, d)  # (S,)
    rel = points[:, None, :] - a[None, :, :]  # (P, S, 2)
    t = np.einsum("psj,sj->ps", rel, d) / np.maximum(denom[None, :], 1e-300)
    t = np.clip(t, 0.0, 1.0)
    closest = a[None, :, :] + t[..., None] * d[None, :, :]
    diff = points[:, None, :] - closest
    dist2 = np.einsum("psj,psj->ps", diff, diff)
    return np.sqrt(dist2.min(axis=1))


# ----------------------------------------------------------------------
# LiDAR ground channel: per-scan crop + per-ring segment loops.
# ----------------------------------------------------------------------
def scan_ground_reference(scanner: LidarScanner, hdmap: HDMap, pose: SE2,
                          rng: np.random.Generator) -> GroundReturns:
    """The original ``LidarScanner._scan_ground``: re-crops map geometry on
    every call and runs the paint/lane distance loops per ring."""
    azimuths = np.linspace(-np.pi, np.pi, scanner.n_azimuth, endpoint=False)
    max_r = max(scanner.ground_ring_radii) + 2.0
    cx, cy = pose.x, pose.y

    centre = np.array([cx, cy])
    crop_r = max_r + 5.0

    def _crop(pts: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        a, b = pts[:-1], pts[1:]
        seg_mid = (a + b) / 2.0
        reach = np.hypot(*(b - a).T) / 2.0 + crop_r
        near = np.hypot(*(seg_mid - centre).T) <= reach
        if not near.any():
            return None
        return a[near], b[near]

    nearby = hdmap.elements_in_radius(cx, cy, crop_r)
    paint_segments: List[Tuple[np.ndarray, np.ndarray, float, float]] = []
    lane_lines: List[Tuple[np.ndarray, np.ndarray]] = []
    for element in nearby:
        if isinstance(element, LaneBoundary):
            half = (CURB_HALF_WIDTH
                    if element.boundary_type in (BoundaryType.CURB,
                                                 BoundaryType.ROAD_EDGE)
                    else PAINT_HALF_WIDTH)
            cropped = _crop(element.line.points)
            if cropped is not None:
                paint_segments.append((cropped[0], cropped[1],
                                       element.reflectivity, half))
        elif element.id.kind == "lane":
            cropped = _crop(element.centerline.points)
            if cropped is not None:
                lane_lines.append(cropped)

    all_points = []
    all_intensity = []
    all_ring = []
    for ring_idx, radius in enumerate(scanner.ground_ring_radii):
        keep = rng.uniform(size=azimuths.size) >= scanner.dropout
        az = azimuths[keep]
        r = radius + rng.normal(0.0, scanner.range_sigma * 2.0, size=az.size)
        local = np.stack([r * np.cos(az), r * np.sin(az)], axis=1)
        world = pose.apply(local)

        best_refl = np.full(world.shape[0], -1.0)
        for a, b, refl, half in paint_segments:
            d = points_to_segments_min_distance_reference(world, a, b)
            hit = d <= half
            best_refl = np.where(hit & (refl > best_refl), refl, best_refl)

        on_road = np.zeros(world.shape[0], dtype=bool)
        for a, b in lane_lines:
            d = points_to_segments_min_distance_reference(world, a, b)
            on_road |= d <= 2.2

        intensity = np.where(
            best_refl >= 0.0, best_refl,
            np.where(on_road, ASPHALT_INTENSITY, OFFROAD_INTENSITY),
        )
        intensity = np.clip(
            intensity + rng.normal(0.0, scanner.intensity_sigma,
                                   size=intensity.size), 0.0, 1.0)
        all_points.append(local)
        all_intensity.append(intensity)
        all_ring.append(np.full(local.shape[0], ring_idx, dtype=int))

    return GroundReturns(
        points=np.concatenate(all_points, axis=0),
        intensity=np.concatenate(all_intensity, axis=0),
        ring=np.concatenate(all_ring, axis=0),
    )


def scan_reference(scanner: LidarScanner, hdmap: HDMap, pose: SE2,
                   rng: np.random.Generator, t: float = 0.0,
                   obstacles=None) -> LidarScan:
    """Full pre-optimization scan: frozen ground channel + the (unchanged)
    object channel, consuming the rng stream in the original order."""
    ground = scan_ground_reference(scanner, hdmap, pose, rng)
    objects = scanner._scan_objects(hdmap, pose, rng, obstacles or ())
    return LidarScan(t=t, ground=ground, objects=objects,
                     max_range=scanner.max_range)


# ----------------------------------------------------------------------
# Particle weighting: the per-particle / per-measurement scalar loop.
# ----------------------------------------------------------------------
def _signed_lateral_reference(a: np.ndarray, b: np.ndarray, x: float,
                              y: float, theta: float) -> Optional[float]:
    p = np.array([x, y])
    d = b - a
    denom = np.einsum("ij,ij->i", d, d)
    t = np.clip(np.einsum("ij,ij->i", p - a, d)
                / np.maximum(denom, 1e-300), 0.0, 1.0)
    closest = a + t[:, None] * d
    dist2 = np.einsum("ij,ij->i", p - closest, p - closest)
    i = int(np.argmin(dist2))
    if dist2[i] > 20.0**2:
        return None
    rel = closest[i] - p
    return float(-math.sin(theta) * rel[0] + math.cos(theta) * rel[1])


def particle_weights_reference(states: np.ndarray,
                               measurements: Sequence[Tuple[float, str]],
                               boundaries, sigma_offset: float) -> np.ndarray:
    """The original ``LaneMarkingLocalizer.update_markings`` weight closure."""
    log_w = np.zeros(states.shape[0])
    for i in range(states.shape[0]):
        x, y, theta = states[i]
        best_total = 0.0
        for m, cls in measurements:
            best = np.inf
            for a_pts, b_pts in boundaries.get(cls, ()):
                d = _signed_lateral_reference(a_pts, b_pts, x, y, theta)
                if d is None:
                    continue
                err = abs(d - m)
                if err < best:
                    best = err
            if np.isfinite(best):
                scale = 2.0 if cls == "edge" else 1.0
                best_total += scale * (min(best, 3.0 * sigma_offset)
                                       / sigma_offset)**2
        log_w[i] = -0.5 * best_total
    log_w -= log_w.max()
    return np.exp(log_w)


# ----------------------------------------------------------------------
# Grid index ordering: the repr()-sorted query the ticket sort replaced.
# ----------------------------------------------------------------------
def query_box_repr_sorted(index, bounds) -> list:
    """The original ``GridIndex.query_box``: determinism via sort(key=repr)."""
    qx0, qy0, qx1, qy1 = bounds
    seen = set()
    hits = []
    for cell in index._cells_for_bounds(bounds):
        for key in index._cells.get(cell, ()):
            if key in seen:
                continue
            seen.add(key)
            bx0, by0, bx1, by1 = index._bounds[key]
            if bx0 <= qx1 and bx1 >= qx0 and by0 <= qy1 and by1 >= qy0:
                hits.append(key)
    hits.sort(key=repr)
    return hits


# ----------------------------------------------------------------------
# Geometric layout Monte-Carlo: sequential per-trial solves.
# ----------------------------------------------------------------------
def simulate_layout_error_reference(layout, range_sigma: float,
                                    rng: np.random.Generator,
                                    trials: int = 200) -> float:
    """The original ``simulate_layout_error``: one lstsq solve per trial."""
    from repro.localization.geometric import solve_position

    true_ranges = np.hypot(layout.positions[:, 0], layout.positions[:, 1])
    errors = np.empty(trials)
    for k in range(trials):
        measured = true_ranges + rng.normal(0.0, range_sigma,
                                            size=true_ranges.size)
        estimate = solve_position(layout, measured)
        errors[k] = float(np.hypot(*estimate))
    return float(np.sqrt(np.mean(errors**2)))


# ----------------------------------------------------------------------
# Line-segment matching: the nested observed x reference Python loop.
# ----------------------------------------------------------------------
def match_line_segments_reference(observed, reference, max_distance=2.0,
                                  max_angle=0.35):
    """The original ``match_line_segments`` association + solve."""
    pairs = []
    for a_obs, b_obs in observed:
        mid_obs = (np.asarray(a_obs) + np.asarray(b_obs)) / 2.0
        dir_obs = np.asarray(b_obs) - np.asarray(a_obs)
        len_obs = float(np.hypot(*dir_obs))
        if len_obs < 1e-6:
            continue
        dir_obs = dir_obs / len_obs
        best = None
        best_d = max_distance
        for a_ref, b_ref in reference:
            dir_ref = np.asarray(b_ref) - np.asarray(a_ref)
            len_ref = float(np.hypot(*dir_ref))
            if len_ref < 1e-6:
                continue
            dir_ref = dir_ref / len_ref
            cos_angle = abs(float(dir_obs @ dir_ref))
            if cos_angle < np.cos(max_angle):
                continue
            rel = mid_obs - np.asarray(a_ref)
            d = abs(float(dir_ref[0] * rel[1] - dir_ref[1] * rel[0]))
            along = float(rel @ dir_ref)
            if d < best_d and -2.0 <= along <= len_ref + 2.0:
                best_d = d
                normal = np.array([-dir_ref[1], dir_ref[0]])
                signed = float(rel @ normal)
                best = (mid_obs, normal, signed)
        if best is not None:
            pairs.append(best)
    if len(pairs) < 2:
        return None

    centroid = np.mean([mid for mid, _, _ in pairs], axis=0)
    A = []
    b = []
    for mid, normal, signed in pairs:
        rel = mid - centroid
        jp = np.array([-rel[1], rel[0]])
        A.append([normal[0], normal[1], float(normal @ jp)])
        b.append(-signed)
    A = np.asarray(A)
    b = np.asarray(b)
    reg = np.diag([1e-9, 1e-9, 1e-6])
    sol = np.linalg.solve(A.T @ A + reg, A.T @ b)
    dx, dy, dtheta = float(sol[0]), float(sol[1]), float(sol[2])
    c_rot = np.array([
        np.cos(dtheta) * centroid[0] - np.sin(dtheta) * centroid[1],
        np.sin(dtheta) * centroid[0] + np.cos(dtheta) * centroid[1],
    ])
    shift = np.array([dx, dy]) + centroid - c_rot
    return SE2(float(shift[0]), float(shift[1]), dtheta)
