"""Metrics used across the experiment suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of an error sample."""

    n: int
    mean: float
    std: float
    median: float
    rmse: float
    p90: float
    p95: float
    max: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.3f} std={self.std:.3f} "
                f"median={self.median:.3f} rmse={self.rmse:.3f} "
                f"p95={self.p95:.3f} max={self.max:.3f}")


def error_stats(errors: Sequence[float]) -> ErrorStats:
    arr = np.asarray(list(errors), dtype=float)
    if arr.size == 0:
        raise ValueError("no errors to summarize")
    return ErrorStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        median=float(np.median(arr)),
        rmse=float(np.sqrt(np.mean(arr**2))),
        p90=float(np.percentile(arr, 90)),
        p95=float(np.percentile(arr, 95)),
        max=float(arr.max()),
    )


def error_histogram(errors: Sequence[float], bin_width: float = 0.25,
                    max_value: float = 5.0) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of errors (counts, bin_edges) — the Figure 2 artefact."""
    arr = np.clip(np.asarray(list(errors), dtype=float), 0.0, max_value)
    edges = np.arange(0.0, max_value + bin_width, bin_width)
    counts, _ = np.histogram(arr, bins=edges)
    return counts, edges


def precision_recall(tp: int, fp: int, fn: int) -> Dict[str, float]:
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


def sensitivity_specificity(tp: int, fp: int, tn: int, fn: int) -> Dict[str, float]:
    sensitivity = tp / (tp + fn) if tp + fn else 0.0
    specificity = tn / (tn + fp) if tn + fp else 0.0
    return {"sensitivity": sensitivity, "specificity": specificity}


def average_precision(scores: Sequence[float], labels: Sequence[bool],
                      n_positives: int | None = None) -> float:
    """AP over scored detections: ``labels[i]`` marks detection i as a TP.

    ``n_positives`` is the total ground-truth count (defaults to the TP
    count, i.e. assumes every positive was detected at some score).
    """
    scores = np.asarray(list(scores), dtype=float)
    labels = np.asarray(list(labels), dtype=bool)
    if scores.size == 0:
        return 0.0
    order = np.argsort(-scores)
    labels = labels[order]
    total_pos = int(labels.sum()) if n_positives is None else n_positives
    if total_pos == 0:
        return 0.0
    tp_cum = np.cumsum(labels)
    fp_cum = np.cumsum(~labels)
    precision = tp_cum / (tp_cum + fp_cum)
    recall = tp_cum / total_pos
    # 101-point interpolation (VOC-style).
    ap = 0.0
    for r in np.linspace(0.0, 1.0, 101):
        mask = recall >= r
        ap += float(precision[mask].max()) if mask.any() else 0.0
    return ap / 101.0
