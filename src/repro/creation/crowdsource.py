"""Crowdsourced 3-D mapping with corrective feedback (Dabeer et al. [29]).

A fleet of vehicles with cost-effective sensors (automotive GNSS + a
forward camera) each contributes noisy observations of road furniture.
The pipeline:

1. project each vehicle's sign detections into the world using its
   GNSS-derived pose;
2. cluster observations spatially and triangulate one landmark per
   cluster (robust mean);
3. *corrective feedback*: each vehicle's systematic GNSS bias is estimated
   from the residuals between its observations and the fused landmarks,
   its trace is corrected, and triangulation repeats.

Per-vehicle GNSS bias is the accuracy killer for a single car; because
biases are independent across the crowd, feedback + fleet averaging drives
the mean absolute error to the paper's < 20 cm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import TrafficSign
from repro.core.hdmap import HDMap
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.transform import SE2
from repro.sensors.camera import Camera, SignDetection
from repro.sensors.gnss import GnssSensor
from repro.sensors.base import SensorGrade
from repro.world.traffic import Trajectory


@dataclass
class VehicleContribution:
    """One vehicle's uploads: pose track (GNSS-based) + detections."""

    vehicle_id: int
    pose_track: List[Tuple[float, SE2]]
    detections: List[SignDetection]
    bias: np.ndarray = field(default_factory=lambda: np.zeros(2))

    def pose_at(self, t: float) -> SE2:
        times = np.array([p[0] for p in self.pose_track])
        i = int(np.clip(np.searchsorted(times, t) - 1, 0,
                        len(self.pose_track) - 2))
        t0, p0 = self.pose_track[i]
        t1, p1 = self.pose_track[i + 1]
        u = float(np.clip((t - t0) / max(t1 - t0, 1e-9), 0.0, 1.0))
        dtheta = np.arctan2(np.sin(p1.theta - p0.theta),
                            np.cos(p1.theta - p0.theta))
        return SE2(p0.x + u * (p1.x - p0.x) - self.bias[0],
                   p0.y + u * (p1.y - p0.y) - self.bias[1],
                   p0.theta + u * dtheta)


@dataclass
class CrowdMappingResult:
    landmarks: np.ndarray  # (K, 2) fused positions
    error: ErrorStats  # against true sign positions (matched)
    matched: int
    feedback_rounds: int


class CrowdMapper:
    """Fleet data collection + triangulation + corrective feedback."""

    def __init__(self, grade: SensorGrade = SensorGrade.AUTOMOTIVE,
                 camera: Optional[Camera] = None,
                 cluster_radius: float = 3.0,
                 feedback_rounds: int = 3) -> None:
        self.gnss = GnssSensor(grade, rate_hz=2.0)
        self.camera = camera if camera is not None else Camera(
            false_positive_rate=0.02)
        self.cluster_radius = cluster_radius
        self.feedback_rounds = feedback_rounds

    # ------------------------------------------------------------------
    def collect(self, reality: HDMap, trajectory: Trajectory,
                vehicle_id: int, rng: np.random.Generator
                ) -> VehicleContribution:
        """Simulate one vehicle's drive and uploads."""
        fixes = self.gnss.measure(trajectory, rng)
        if len(fixes) < 6:
            raise ValueError("trajectory too short for crowdsourcing")
        # Smooth the raw fixes (vehicles fuse GNSS with odometry/IMU; a
        # zero-phase moving average is the cheap equivalent) — without it,
        # per-fix white noise wrecks the heading estimate and every
        # detection's world projection inherits metres of lateral error.
        pts = np.array([f.position for f in fixes])
        window = 7
        kernel = np.ones(window) / window
        x = np.convolve(pts[:, 0], kernel, mode="same")
        y = np.convolve(pts[:, 1], kernel, mode="same")
        half = window // 2
        x[:half], x[-half:] = pts[:half, 0], pts[-half:, 0]
        y[:half], y[-half:] = pts[:half, 1], pts[-half:, 1]
        pose_track: List[Tuple[float, SE2]] = []
        for i in range(len(fixes) - 1):
            j = min(i + 2, len(fixes) - 1)
            k = max(i - 2, 0)
            heading = float(np.arctan2(y[j] - y[k], x[j] - x[k]))
            pose_track.append((fixes[i].t, SE2(float(x[i]), float(y[i]),
                                               heading)))
        detections: List[SignDetection] = []
        for t, _ in pose_track:
            true_pose = trajectory.pose_at(t)
            detections.extend(
                self.camera.observe_signs(reality, true_pose, rng, t=t))
        return VehicleContribution(vehicle_id, pose_track, detections)

    # ------------------------------------------------------------------
    def fuse(self, contributions: Sequence[VehicleContribution],
             reality: HDMap) -> CrowdMappingResult:
        """Triangulate landmarks and run corrective-feedback rounds."""
        landmarks = self._triangulate(contributions)
        rounds = 0
        for _ in range(self.feedback_rounds):
            changed = self._feedback(contributions, landmarks)
            landmarks = self._triangulate(contributions)
            rounds += 1
            if not changed:
                break
        error, matched = self._score(landmarks, reality)
        return CrowdMappingResult(landmarks=landmarks, error=error,
                                  matched=matched, feedback_rounds=rounds)

    # ------------------------------------------------------------------
    def _observation_points(self, contributions: Sequence[VehicleContribution]
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """World positions of detections + owning vehicle + fusion weight.

        Weight is the inverse measurement variance — long-range detections
        carry metre-level range noise and must not dilute the near passes.
        """
        pts = []
        owners = []
        weights = []
        for k, contrib in enumerate(contributions):
            for det in contrib.detections:
                if det.range > 45.0:
                    continue
                pose = contrib.pose_at(det.t)
                pts.append(pose.apply(det.body_frame_position()))
                owners.append(k)
                sigma2 = 0.3**2 + (0.05 * det.range)**2
                weights.append(1.0 / sigma2)
        return np.array(pts), np.array(owners), np.array(weights)

    def _triangulate(self, contributions: Sequence[VehicleContribution]
                     ) -> np.ndarray:
        pts, owners, weights = self._observation_points(contributions)
        if pts.shape[0] == 0:
            return np.zeros((0, 2))
        clusters = _greedy_cluster(pts, self.cluster_radius)
        fused = []
        for members in clusters:
            if len(members) < 3:
                continue  # clutter rejection
            cluster_pts = pts[members]
            cluster_owner = owners[members]
            cluster_w = weights[members]
            # Weighted per-vehicle average first (equalizes vehicles with
            # different observation counts), then average across vehicles.
            per_vehicle = []
            for v in np.unique(cluster_owner):
                sel = cluster_owner == v
                w = cluster_w[sel]
                per_vehicle.append(
                    (cluster_pts[sel] * w[:, None]).sum(axis=0) / w.sum())
            fused.append(np.mean(per_vehicle, axis=0))
        if not fused:
            return np.zeros((0, 2))
        return _merge_close(np.array(fused), self.cluster_radius * 0.8)

    def _feedback(self, contributions: Sequence[VehicleContribution],
                  landmarks: np.ndarray) -> bool:
        """Update per-vehicle bias estimates from landmark residuals."""
        if landmarks.shape[0] == 0:
            return False
        changed = False
        for contrib in contributions:
            residuals = []
            for det in contrib.detections:
                pose = contrib.pose_at(det.t)
                world = pose.apply(det.body_frame_position())
                d = np.hypot(landmarks[:, 0] - world[0],
                             landmarks[:, 1] - world[1])
                i = int(np.argmin(d))
                if d[i] <= self.cluster_radius:
                    residuals.append(world - landmarks[i])
            if len(residuals) >= 3:
                new_bias = contrib.bias + np.mean(residuals, axis=0)
                if float(np.hypot(*(new_bias - contrib.bias))) > 1e-3:
                    changed = True
                contrib.bias = new_bias
        return changed

    def _score(self, landmarks: np.ndarray,
               reality: HDMap) -> Tuple[ErrorStats, int]:
        """Per true sign: distance to the nearest fused landmark."""
        truth = np.array([s.position for s in reality.signs()])
        errors = []
        for sign in truth:
            if landmarks.shape[0] == 0:
                break
            d = np.hypot(landmarks[:, 0] - sign[0],
                         landmarks[:, 1] - sign[1])
            i = int(np.argmin(d))
            if d[i] <= self.cluster_radius:
                errors.append(float(d[i]))
        if not errors:
            errors = [float("nan")]
        return error_stats(errors), len(errors)


def _merge_close(points: np.ndarray, radius: float) -> np.ndarray:
    """Merge near-duplicate fused landmarks (split clusters) by averaging."""
    merged: List[np.ndarray] = []
    used = np.zeros(points.shape[0], dtype=bool)
    for i in range(points.shape[0]):
        if used[i]:
            continue
        d = np.hypot(points[:, 0] - points[i, 0], points[:, 1] - points[i, 1])
        members = np.where(~used & (d <= radius))[0]
        used[members] = True
        merged.append(points[members].mean(axis=0))
    return np.array(merged)


def _greedy_cluster(points: np.ndarray, radius: float) -> List[List[int]]:
    """Greedy spatial clustering: grow a cluster around each unvisited point."""
    n = points.shape[0]
    unassigned = np.ones(n, dtype=bool)
    clusters: List[List[int]] = []
    order = np.arange(n)
    for i in order:
        if not unassigned[i]:
            continue
        d = np.hypot(points[:, 0] - points[i, 0], points[:, 1] - points[i, 1])
        members = np.where(unassigned & (d <= radius))[0]
        # Re-centre once for stability.
        centre = points[members].mean(axis=0)
        d = np.hypot(points[:, 0] - centre[0], points[:, 1] - centre[1])
        members = np.where(unassigned & (d <= radius))[0]
        unassigned[members] = False
        clusters.append(list(members))
    return clusters
