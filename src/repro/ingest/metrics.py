"""End-to-end observability of the ingestion pipeline.

Reuses the shared thread-safe :class:`Counter` / :class:`Gauge` /
:class:`LatencyHistogram` primitives from :mod:`repro.obs.metrics`
(``Gauge`` used to be defined here and is re-exported for backward
compatibility) and adds the two surfaces the maintenance loop needs:
per-stage latency histograms (where in validate -> associate -> fuse ->
classify -> emit does time go), kept *per worker* and aggregated with
:meth:`LatencyHistogram.merge` at export time, and the *map-freshness
lag* — the wall time from an observation entering the bus to the moment
its confirmed patch is visible to ``ChangesSince`` on the serving
layer. Freshness is the metric the whole subsystem exists to drive
down; it is also mirrored into
:class:`~repro.serve.metrics.ServiceMetrics` when the publisher is wired
to a service, so one dashboard shows both sides of the loop. The whole
aggregate registers into a
:class:`~repro.obs.metrics.MetricsRegistry` under canonical
``ingest.*`` names via :meth:`IngestMetrics.register_into`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.core.validation import ALL_CONSTRAINTS
from repro.obs.metrics import (  # noqa: F401  (compatibility re-exports)
    FRESHNESS_BOUNDS,
    Counter,
    Gauge,
    HotCounter,
    LatencyHistogram,
    MetricsRegistry,
)

#: Stage latencies are short (in-process work): 10 us .. 1 s, then +inf.
STAGE_BOUNDS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1.0)


class IngestMetrics:
    """Counters, gauges, and histograms for one pipeline instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (stage, worker) -> histogram; worker None is the shared series
        # used by callers that predate per-worker attribution.
        self._stage_latency: Dict[Tuple[str, Optional[int]],
                                  LatencyHistogram] = {}
        self.freshness = LatencyHistogram(FRESHNESS_BOUNDS)
        # consumer-side (producer-side counts live on the ObservationBus
        # and are merged into the export by IngestPipeline.stats())
        self.observations_processed = Counter()
        self.batches_processed = Counter()
        self.batch_retries = Counter()
        self.dead_letters = Counter()
        self.worker_restarts = Counter()
        # publish-side
        self.patches_published = Counter()
        self.patches_duplicate = Counter()
        self.patches_conflicted = Counter()
        self.publish_retries = Counter()
        self.publish_failures = Counter()
        # verify gate (see repro.ingest.verify) — the per-constraint
        # counters are pre-seeded from the canonical catalog so every
        # ``ingest.verify.constraint.<name>`` series exists from boot,
        # violations or not (dashboards and check_docs rely on this).
        # checked and passed are bumped on every clean publish — the
        # gate's hot path — so they are lock-free (see HotCounter and
        # verify_mark_clean()).
        self.verify_checked = HotCounter()
        self.verify_passed = HotCounter()
        self._verify_checked_next = self.verify_checked._count.__next__
        self._verify_passed_next = self.verify_passed._count.__next__
        self.verify_quarantined = Counter()
        self.verify_violations = Counter()
        self.verify_constraint: Dict[str, Counter] = {
            name: Counter() for name in ALL_CONSTRAINTS
        }
        self.quarantine_depth = Gauge()
        # per-stage circuit breakers (see repro.ingest.breaker)
        self.breaker_opens = Counter()
        self.breaker_fast_failures = Counter()
        # gauges, keyed by partition index
        self.queue_depth: Dict[int, Gauge] = {}
        self.in_flight = Gauge()

    def stage_histogram(self, stage: str,
                        worker: Optional[int] = None) -> LatencyHistogram:
        """The per-worker histogram of one stage (lazily created)."""
        key = (stage, worker)
        with self._lock:
            hist = self._stage_latency.get(key)
            if hist is None:
                hist = self._stage_latency[key] = \
                    LatencyHistogram(STAGE_BOUNDS)
            return hist

    def record_stage(self, stage: str, seconds: float,
                     worker: Optional[int] = None) -> None:
        self.stage_histogram(stage, worker).record(seconds)

    def stage_names(self) -> List[str]:
        with self._lock:
            return sorted({stage for stage, _ in self._stage_latency})

    def merged_stage_histogram(self, stage: str) -> LatencyHistogram:
        """All workers' histograms of ``stage`` folded into one
        (:meth:`LatencyHistogram.merge` — bounds are uniform here by
        construction)."""
        with self._lock:
            parts = [hist for (name, _), hist in self._stage_latency.items()
                     if name == stage]
        merged = LatencyHistogram(STAGE_BOUNDS)
        for part in parts:
            merged.merge(part)
        return merged

    def record_freshness(self, lag_s: float) -> None:
        self.freshness.record(lag_s)

    def verify_mark_clean(self) -> None:
        """Count one clean verify decision (checked + passed).

        Publish hot path: two pre-bound lock-free increments (see
        :class:`~repro.obs.metrics.HotCounter`), no lock, no attribute
        chains.
        """
        self._verify_checked_next()
        self._verify_passed_next()

    def depth_gauge(self, partition: int) -> Gauge:
        with self._lock:
            gauge = self.queue_depth.get(partition)
            if gauge is None:
                gauge = self.queue_depth[partition] = Gauge()
            return gauge

    def freshness_p95_s(self) -> float:
        return self.freshness.percentile(95.0)

    def as_dict(self) -> Dict[str, object]:
        """Consistent point-in-time export for dashboards/CLI output.

        ``stage_latency`` aggregates every worker's series per stage via
        :meth:`merged_stage_histogram`, so the shape is unchanged from
        the pre-per-worker days.
        """
        with self._lock:
            depths = {p: g.value for p, g in sorted(self.queue_depth.items())}
        return {
            "stage_latency": {s: self.merged_stage_histogram(s).snapshot()
                              for s in self.stage_names()},
            "freshness": self.freshness.snapshot(),
            "queue_depth": depths,
            "in_flight": self.in_flight.value,
            "observations": {
                "processed": self.observations_processed.value,
            },
            "batches": {
                "processed": self.batches_processed.value,
                "retries": self.batch_retries.value,
                "dead_letters": self.dead_letters.value,
                "worker_restarts": self.worker_restarts.value,
            },
            "patches": {
                "published": self.patches_published.value,
                "duplicate_suppressed": self.patches_duplicate.value,
                "conflicted": self.patches_conflicted.value,
                "publish_retries": self.publish_retries.value,
                "publish_failures": self.publish_failures.value,
            },
            "verify": {
                "checked": self.verify_checked.value,
                "passed": self.verify_passed.value,
                "quarantined": self.verify_quarantined.value,
                "violations": self.verify_violations.value,
                "quarantine_depth": self.quarantine_depth.value,
                "by_constraint": {name: c.value for name, c in
                                  sorted(self.verify_constraint.items())},
            },
            "breaker": {
                "opens": self.breaker_opens.value,
                "fast_failures": self.breaker_fast_failures.value,
            },
        }

    # -- unified registry ----------------------------------------------
    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "ingest") -> None:
        """Register under canonical ``<prefix>.*`` names:

        - ``ingest.observations.processed``, ``ingest.batches.*``,
          ``ingest.patches.*`` (counters)
        - ``ingest.freshness`` (histogram)
        - ``ingest.in_flight``, ``ingest.queue_depth.<partition>``
          (gauges, partitions via collector)
        - ``ingest.stage.<stage>`` (merged-across-workers histograms,
          via collector because stages/workers appear lazily)
        """
        registry.register(f"{prefix}.observations.processed",
                          self.observations_processed)
        registry.register(f"{prefix}.batches.processed",
                          self.batches_processed)
        registry.register(f"{prefix}.batches.retries", self.batch_retries)
        registry.register(f"{prefix}.batches.dead_letters",
                          self.dead_letters)
        registry.register(f"{prefix}.batches.worker_restarts",
                          self.worker_restarts)
        registry.register(f"{prefix}.patches.published",
                          self.patches_published)
        registry.register(f"{prefix}.patches.duplicate_suppressed",
                          self.patches_duplicate)
        registry.register(f"{prefix}.patches.conflicted",
                          self.patches_conflicted)
        registry.register(f"{prefix}.patches.publish_retries",
                          self.publish_retries)
        registry.register(f"{prefix}.patches.publish_failures",
                          self.publish_failures)
        registry.register(f"{prefix}.verify.checked", self.verify_checked)
        registry.register(f"{prefix}.verify.passed", self.verify_passed)
        registry.register(f"{prefix}.verify.quarantined",
                          self.verify_quarantined)
        registry.register(f"{prefix}.verify.violations",
                          self.verify_violations)
        registry.register(f"{prefix}.verify.quarantine_depth",
                          self.quarantine_depth)
        for name, counter in sorted(self.verify_constraint.items()):
            registry.register(f"{prefix}.verify.constraint.{name}", counter)
        registry.register(f"{prefix}.breaker.opens", self.breaker_opens)
        registry.register(f"{prefix}.breaker.fast_failures",
                          self.breaker_fast_failures)
        registry.register(f"{prefix}.freshness", self.freshness)
        registry.register(f"{prefix}.in_flight", self.in_flight)

        def collect() -> Dict[str, object]:
            out: Dict[str, object] = {}
            for stage in self.stage_names():
                out[f"{prefix}.stage.{stage}"] = \
                    self.merged_stage_histogram(stage)
            with self._lock:
                depths = dict(self.queue_depth)
            for partition, gauge in depths.items():
                out[f"{prefix}.queue_depth.{partition}"] = gauge
            return out

        registry.register_collector(collect)
