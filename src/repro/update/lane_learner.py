"""Geometric lane learning from low-accuracy crowd data (Kim et al. [45]).

Crowdsourced lane observations are individually poor (cheap sensors), but
lanes obey strong geometric priors: they are smooth and locally straight.
The learner fits a lane polyline to binned crowd points with a
second-difference (curvature) penalty — a linear smoother solved in closed
form — which beats naive per-bin averaging exactly when the data is noisy
and sparse, the paper's operating regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.polyline import Polyline


@dataclass
class LaneLearnResult:
    lane: Optional[Polyline]
    error: ErrorStats


class LaneLearner:
    """Smoothness-regularized lane fit along a reference corridor."""

    def __init__(self, reference: Polyline, station_bin: float = 10.0,
                 smoothness: float = 25.0) -> None:
        self.reference = reference
        self.station_bin = station_bin
        self.smoothness = smoothness

    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray) -> Optional[Polyline]:
        """Fit a lane centerline to crowd points near the reference.

        Solves ridge-style least squares over per-bin lateral offsets d_i:
        sum_i w_i (d_i - mean_i)^2 + lambda * sum |d_{i-1} - 2 d_i + d_{i+1}|^2.
        """
        ref = self.reference
        n_bins = max(3, int(ref.length / self.station_bin))
        edges = np.linspace(0.0, ref.length, n_bins + 1)
        sums = np.zeros(n_bins)
        counts = np.zeros(n_bins)
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        if pts.shape[0]:
            s_all, d_all = ref.project_batch(pts)
            keep = ((s_all >= 0.0) & (s_all <= ref.length)
                    & (np.abs(d_all) <= 10.0))
            bins = np.minimum((s_all[keep] / ref.length * n_bins).astype(int),
                              n_bins - 1)
            # np.add.at accumulates in point order — same float sums as the
            # scalar loop it replaced.
            np.add.at(sums, bins, d_all[keep])
            np.add.at(counts, bins, 1.0)
        observed = counts > 0
        if observed.sum() < 3:
            return None
        means = np.where(observed, sums / np.maximum(counts, 1), 0.0)

        # Build (W + lambda D^T D) d = W m.
        W = np.diag(counts)
        D = np.zeros((n_bins - 2, n_bins))
        for i in range(n_bins - 2):
            D[i, i] = 1.0
            D[i, i + 1] = -2.0
            D[i, i + 2] = 1.0
        A = W + self.smoothness * (D.T @ D)
        b = counts * means
        try:
            d = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            return None

        s_mid = (edges[:-1] + edges[1:]) / 2.0
        return Polyline(ref.points_at(s_mid) + d[:, None] * ref.normals_at(s_mid))

    # ------------------------------------------------------------------
    def fit_naive(self, points: np.ndarray) -> Optional[Polyline]:
        """Baseline: per-bin averaging without the geometric prior."""
        saved = self.smoothness
        self.smoothness = 0.0
        try:
            return self.fit(points)
        finally:
            self.smoothness = saved

    # ------------------------------------------------------------------
    def score(self, fitted: Optional[Polyline],
              truth: Polyline) -> ErrorStats:
        if fitted is None:
            return error_stats([float("nan")])
        sampled = fitted.resample(self.station_bin).points
        errors = np.abs(truth.project_batch(sampled)[1])
        return error_stats(errors)
