"""Lane-level HD maps from a road graph + BEV lane semantics
(Zhou et al. [38]).

The paper starts from OpenStreetMap (road-segment topology, no lanes) and
adds lane-level detail from bird's-eye-view semantic segmentation of ego
drives. Here: the "OSM" input is the true map's segment skeleton (reference
lines + connectivity, coarsened), and the BEV semantics are lateral
lane-marking offsets observed along drives. Output: a directed lane-level
graph with per-segment lane counts and centerlines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import BoundaryType, Lane, LaneBoundary, RoadSegment
from repro.core.hdmap import HDMap
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.polyline import Polyline
from repro.geometry.transform import SE2
from repro.world.traffic import Trajectory


@dataclass
class BevObservation:
    """One BEV frame: marking lateral offsets seen around the vehicle."""

    t: float
    pose: SE2
    marking_offsets: List[float]  # signed body-frame laterals of markings


def observe_bev_markings(reality: HDMap, pose: SE2,
                         rng: np.random.Generator,
                         max_lateral: float = 9.0,
                         noise_sigma: float = 0.1,
                         detection_prob: float = 0.85) -> BevObservation:
    """BEV semantic-segmentation surrogate: visible marking offsets."""
    offsets: List[float] = []
    point = np.array([pose.x, pose.y])
    for element in reality.elements_in_radius(pose.x, pose.y,
                                              max_lateral + 5.0,
                                              kind="boundary"):
        assert isinstance(element, LaneBoundary)
        s, _ = element.line.project(point)
        if not 0.0 < s < element.line.length:
            continue
        body = pose.inverse().apply(element.line.point_at(s))
        if abs(body[1]) <= max_lateral and rng.uniform() < detection_prob:
            offsets.append(float(body[1] + rng.normal(0.0, noise_sigma)))
    return BevObservation(t=0.0, pose=pose, marking_offsets=offsets)


@dataclass
class LaneGraphResult:
    lanes: List[Polyline]
    lane_count_accuracy: float  # fraction of segments with correct count
    centerline_error: ErrorStats


class LaneGraphBuilder:
    """Builds the lane-level graph from the segment skeleton + BEV frames."""

    def __init__(self, truth: HDMap, lane_width: float = 3.5) -> None:
        self.truth = truth
        self.lane_width = lane_width

    # ------------------------------------------------------------------
    def collect(self, trajectory: Trajectory, rng: np.random.Generator,
                stride_s: float = 1.0) -> List[BevObservation]:
        frames = []
        t = trajectory.start_time
        while t <= trajectory.end_time:
            pose = trajectory.pose_at(t)
            frame = observe_bev_markings(self.truth, pose, rng)
            frame = BevObservation(t=t, pose=pose,
                                   marking_offsets=frame.marking_offsets)
            frames.append(frame)
            t += stride_s
        return frames

    # ------------------------------------------------------------------
    def build(self, frames: Sequence[BevObservation]) -> LaneGraphResult:
        lanes: List[Polyline] = []
        correct_counts = 0
        evaluated = 0
        for segment in self.truth.segments():
            seg_lanes, count_ok = self._segment_lanes(segment, frames)
            lanes.extend(seg_lanes)
            if count_ok is not None:
                evaluated += 1
                correct_counts += int(count_ok)
        true_lines = [lane.centerline for lane in self.truth.lanes()]
        errors: List[float] = []
        for line in lanes:
            for p in line.resample(20.0).points:
                errors.append(min(t.distance_to(p) for t in true_lines))
        if not errors:
            errors = [float("nan")]
        return LaneGraphResult(
            lanes=lanes,
            lane_count_accuracy=(correct_counts / evaluated) if evaluated else 0.0,
            centerline_error=error_stats(errors),
        )

    # ------------------------------------------------------------------
    def _segment_lanes(self, segment: RoadSegment,
                       frames: Sequence[BevObservation]
                       ) -> Tuple[List[Polyline], Optional[bool]]:
        ref = segment.reference_line
        # Gather marking offsets relative to the *reference line* from all
        # frames whose pose lies on this segment.
        offsets: List[float] = []
        for frame in frames:
            s, d_vehicle = ref.project((frame.pose.x, frame.pose.y))
            if not (0.0 < s < ref.length) or abs(d_vehicle) > 12.0:
                continue
            heading = ref.heading_at(s)
            flip = np.cos(frame.pose.theta - heading) < 0
            for off in frame.marking_offsets:
                d = d_vehicle + (-off if flip else off)
                offsets.append(d)
        if len(offsets) < 20:
            return [], None
        marking_positions = _offset_peaks(np.array(offsets))
        if len(marking_positions) < 2:
            return [], None
        marking_positions.sort()
        lanes: List[Polyline] = []
        for left, right in zip(marking_positions[1:], marking_positions[:-1]):
            gap = left - right
            if not 2.2 <= gap <= 5.5:
                continue
            centre_offset = (left + right) / 2.0
            try:
                lanes.append(ref.offset(centre_offset, spacing=10.0))
            except Exception:
                continue
        inferred_count = len(lanes)
        true_count = segment.lane_count
        return lanes, inferred_count == true_count


def _offset_peaks(offsets: np.ndarray, bin_width: float = 0.4,
                  min_fraction: float = 0.05) -> List[float]:
    bins = np.arange(offsets.min() - bin_width, offsets.max() + bin_width,
                     bin_width)
    if bins.size < 3:
        return []
    counts, edges = np.histogram(offsets, bins=bins)
    total = counts.sum()
    peaks: List[float] = []
    order = np.argsort(-counts)
    for i in order:
        if counts[i] < max(4, min_fraction * total / 3):
            break
        candidate = float((edges[i] + edges[i + 1]) / 2.0)
        if all(abs(candidate - p) >= 1.8 for p in peaks):
            members = offsets[np.abs(offsets - candidate) <= bin_width * 1.5]
            if members.size:
                peaks.append(float(members.mean()))
    return peaks
