"""Map distribution: the shared HD-map database and its subscribers.

SLAMCU's detected changes "are reported to the HD map database for
sharing with other vehicles/systems" [41]; Pannen et al.'s jobs feed a
fleet-wide map [44]. This module is that database: it ingests patches
from multiple independent pipelines with conflict resolution, versions
them atomically, and lets vehicles synchronize incrementally ("give me
everything since version N") instead of re-downloading the map.

Consistency guarantee (what the serving layer builds on):
:class:`MapDistributionServer` serializes every mutation and every read
of the version log behind one reentrant lock, so concurrent callers
observe *single-copy* semantics — each ``ingest`` is atomic (a patch is
fully applied at version N or not at all), the version sequence is
gap-free and monotonic, and :meth:`MapDistributionServer.delta_since`
returns a version, its change log suffix, and copies of the touched
elements captured at the *same* instant. A client applying deltas in
order therefore never sees a torn patch or versions out of order, and
after applying a delta for version N it is element-for-element identical
to the server at N.
"""

from __future__ import annotations

import copy
import enum
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.changes import MapChange
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.versioning import (
    AddElement,
    MapPatch,
    RemoveElement,
    ReplaceElement,
    VersionedMap,
)
from repro.errors import UpdateError


class ConflictPolicy(enum.Enum):
    REJECT = "reject"  # refuse patches touching recently-touched elements
    LAST_WRITER_WINS = "last_writer_wins"
    HIGHEST_CONFIDENCE = "highest_confidence"


@dataclass
class IngestResult:
    accepted: bool
    version: Optional[int]
    dropped_ops: int
    reason: str = ""


@dataclass
class _Provenance:
    source: str
    confidence: float
    version: int


@dataclass
class SyncDelta:
    """An atomic incremental-sync payload.

    ``version`` is the server version the delta was captured at;
    ``changes`` is the change-log suffix after the client's version; and
    ``elements`` maps every touched element id to a copy of its state at
    ``version`` (None when the element no longer exists). All three are
    read under the server lock, so the delta can never be torn by a
    concurrent ingest.
    """

    version: int
    changes: List[MapChange]
    elements: Dict[ElementId, Optional[object]]


class MapDistributionServer:
    """The authoritative, versioned HD-map database (thread-safe)."""

    def __init__(self, base: HDMap,
                 policy: ConflictPolicy = ConflictPolicy.HIGHEST_CONFIDENCE,
                 conflict_window: int = 3) -> None:
        self.db = VersionedMap(base)
        self.policy = policy
        self.conflict_window = conflict_window
        self._touched: Dict[ElementId, _Provenance] = {}
        self._lock = threading.RLock()
        self._listeners: List[Callable[[int, MapPatch], None]] = []

    def add_listener(self, fn: Callable[[int, MapPatch], None]) -> None:
        """Register ``fn(version, patch)``, called after each accepted
        ingest (outside the server lock; listeners must not block long
        and may call back into the server)."""
        with self._lock:
            self._listeners.append(fn)

    @property
    def version(self) -> int:
        with self._lock:
            return self.db.version

    # ------------------------------------------------------------------
    def _op_target(self, op) -> ElementId:
        if isinstance(op, AddElement):
            return op.element.id
        if isinstance(op, RemoveElement):
            return op.element_id
        if isinstance(op, ReplaceElement):
            return op.element.id
        raise UpdateError(f"unknown op {op!r}")

    def _conflicts(self, patch: MapPatch) -> List[Tuple[object, _Provenance]]:
        out = []
        for op in patch.ops:
            target = self._op_target(op)
            previous = self._touched.get(target)
            if previous is None:
                continue
            if self.version - previous.version < self.conflict_window:
                out.append((op, previous))
        return out

    # ------------------------------------------------------------------
    def ingest(self, patch: MapPatch,
               policy: Optional[ConflictPolicy] = None) -> IngestResult:
        """Apply a pipeline's patch atomically under the conflict policy.

        ``policy`` overrides the server's default for this one call, so
        independent ingestion pipelines can run different conflation rules
        against the same database.
        """
        if not patch.ops:
            return IngestResult(False, None, 0, "empty patch")
        with self._lock:
            result = self._ingest_locked(patch, policy or self.policy)
            listeners = list(self._listeners)
        if result.accepted:
            for fn in listeners:
                fn(result.version, patch)
        return result

    def _ingest_locked(self, patch: MapPatch,
                       policy: ConflictPolicy) -> IngestResult:
        conflicts = self._conflicts(patch)
        ops = list(patch.ops)
        dropped = 0
        if conflicts:
            if policy is ConflictPolicy.REJECT:
                return IngestResult(False, None, len(ops),
                                    f"{len(conflicts)} conflicting op(s)")
            if policy is ConflictPolicy.HIGHEST_CONFIDENCE:
                losing = {id(op) for op, prev in conflicts
                          if patch.confidence <= prev.confidence}
                dropped = len(losing)
                ops = [op for op in ops if id(op) not in losing]
            # LAST_WRITER_WINS keeps every op.
        if not ops:
            return IngestResult(False, None, dropped,
                                "all ops lost their conflicts")
        filtered = MapPatch(ops=ops, source=patch.source,
                            confidence=patch.confidence)
        version = self.db.apply(filtered)
        for op in ops:
            self._touched[self._op_target(op)] = _Provenance(
                source=patch.source, confidence=patch.confidence,
                version=version)
        return IngestResult(True, version, dropped)

    # ------------------------------------------------------------------
    def changes_since(self, version: int) -> List[MapChange]:
        with self._lock:
            return self.db.changes_since(version)

    def snapshot(self) -> HDMap:
        with self._lock:
            return self.db.map.copy()

    def delta_since(self, version: int) -> SyncDelta:
        """Atomically capture (version, change suffix, touched elements)."""
        with self._lock:
            changes = self.db.changes_since(version)
            touched: Set[ElementId] = {c.element_id for c in changes}
            elements = {
                eid: copy.copy(self.db.map.get(eid))
                if eid in self.db.map else None
                for eid in touched
            }
            return SyncDelta(self.db.version, changes, elements)

    def element_ids(self) -> Set[ElementId]:
        """Ids currently in the authoritative map (consistent read)."""
        with self._lock:
            return {e.id for e in self.db.map.elements()}

    def new_element_id(self, kind: str) -> ElementId:
        """Allocate a fresh id on the authoritative map, thread-safely."""
        with self._lock:
            return self.db.map.new_id(kind)


@dataclass
class VehicleMapClient:
    """A vehicle's local map, kept current by incremental sync.

    With ``wire=True`` each sync round-trips the delta through the
    binary wire format (:mod:`repro.pack.delta`), and
    ``bytes_downloaded`` counts the actual encoded bytes instead of the
    ``CHANGE_RECORD_BYTES`` estimate.
    """

    server: MapDistributionServer
    local: HDMap = None  # type: ignore[assignment]
    synced_version: int = -1
    bytes_downloaded: int = 0
    wire: bool = False

    CHANGE_RECORD_BYTES = 48

    def __post_init__(self) -> None:
        if self.local is None:
            self.bootstrap()

    def bootstrap(self) -> None:
        """Full download (what incremental sync avoids afterwards)."""
        from repro.storage.binary import encode_map

        snapshot = self.server.snapshot()
        self.bytes_downloaded += len(encode_map(snapshot))
        self.local = snapshot
        self.synced_version = self.server.version

    def sync(self) -> int:
        """Incremental update; returns the number of changes applied.

        Change records describe what happened; the client re-fetches the
        touched elements from the server snapshot (element-level delta).
        The delta is captured atomically, so this is safe to call while
        other threads are ingesting patches.
        """
        if self.synced_version == self.server.version:
            return 0
        delta = self.server.delta_since(self.synced_version)
        if self.wire:
            from repro.pack.delta import decode_delta, encode_delta

            blob = encode_delta(delta)
            self.bytes_downloaded += len(blob)
            return self.apply_delta(decode_delta(blob), count_bytes=False)
        return self.apply_delta(delta)

    def apply_delta(self, delta: SyncDelta, count_bytes: bool = True) -> int:
        """Apply an atomic :class:`SyncDelta`; returns changes applied.

        Stale deltas (captured at or before the client's version) are
        ignored, so out-of-order delivery can never roll the client back.
        ``count_bytes=False`` skips the per-change download estimate (the
        wire path already counted the real encoded bytes).
        """
        if delta.version <= self.synced_version:
            return 0
        applied = 0
        for change in delta.changes:
            eid = change.element_id
            if count_bytes:
                self.bytes_downloaded += self.CHANGE_RECORD_BYTES
            element = delta.elements.get(eid)
            in_local = eid in self.local
            if element is not None:
                if in_local:
                    self.local.replace(element)
                else:
                    self.local.add(element)
            elif in_local:
                self.local.remove(eid)
            applied += 1
        self.synced_version = delta.version
        return applied

    def is_consistent(self) -> bool:
        """Local matches the server snapshot element-for-element."""
        local_ids = {e.id for e in self.local.elements()}
        return self.server.element_ids() == local_ids
