"""HD-map geometry from vehicle probe data (Massow et al. [28]).

Connected vehicles stream position probes; the pipeline aggregates them
into lane centerlines. Two operating modes, as in the paper:

- *GPS-only*: raw probe fixes, clustered laterally per road corridor.
  Per-vehicle GNSS biases do not cancel within one trace, so accuracy
  saturates in the low metres (paper: 2.4 m).
- *sensor-fused*: each probe also carries the camera's lane-centre offset,
  which removes the in-lane wander and part of the lateral GNSS error
  (paper: 1.9 m).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import Lane, RoadSegment
from repro.core.hdmap import HDMap
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.polyline import Polyline
from repro.sensors.probe import ProbeTrace


@dataclass
class ProbeMapResult:
    """Inferred centerlines per (segment, lane index) with accuracy."""

    centerlines: List[Polyline]
    centerline_error: ErrorStats
    lanes_found: int
    lanes_true: int


class ProbeMapper:
    """Aggregates probe traces into per-lane centerlines.

    The road *corridors* (segment reference lines without lane detail, the
    "navigation map" prior the paper assumes) come from the true map's
    segments; the lane-level content is inferred purely from probes.
    """

    def __init__(self, truth: HDMap, station_bin: float = 20.0,
                 use_lane_sensor: bool = False) -> None:
        self.truth = truth
        self.station_bin = station_bin
        self.use_lane_sensor = use_lane_sensor

    # ------------------------------------------------------------------
    def build(self, traces: Sequence[ProbeTrace]) -> ProbeMapResult:
        segments = list(self.truth.segments())
        centerlines: List[Polyline] = []
        for segment in segments:
            centerlines.extend(self._lanes_for_segment(segment, traces))
        error = self._score(centerlines)
        lanes_true = sum(s.lane_count for s in segments)
        return ProbeMapResult(
            centerlines=centerlines,
            centerline_error=error,
            lanes_found=len(centerlines),
            lanes_true=lanes_true,
        )

    # ------------------------------------------------------------------
    def _lanes_for_segment(self, segment: RoadSegment,
                           traces: Sequence[ProbeTrace]) -> List[Polyline]:
        ref = segment.reference_line
        corridor = 3.7 * (max(len(segment.forward_lanes), 1)
                          + max(len(segment.backward_lanes), 1)) / 2.0 + 6.0
        # Collect (station, lateral) samples inside the corridor.
        samples: List[Tuple[float, float]] = []
        for trace in traces:
            lane_offsets = {
                round(obs.t, 3): obs.lane_centre_offset
                for obs in trace.lane_observations
                if obs.lane_centre_offset is not None
            } if self.use_lane_sensor else {}
            for fix in trace.fixes:
                s, d = ref.project(fix.position)
                if not (0.0 < s < ref.length) or abs(d) > corridor:
                    continue
                if self.use_lane_sensor:
                    offset = lane_offsets.get(round(fix.t, 3))
                    if offset is not None:
                        # The camera says how far the vehicle sits from its
                        # lane centre; subtracting it snaps the probe onto
                        # the centre of whatever lane it drives.
                        d = d - offset
                samples.append((s, d))
        if len(samples) < 30:
            return []
        arr = np.array(samples)

        # Lateral clustering into lanes: histogram peaks at 3.5 m pitch.
        laterals = arr[:, 1]
        lane_centres = _lateral_peaks(laterals)
        if not lane_centres:
            return []

        lanes: List[Polyline] = []
        n_bins = max(2, int(ref.length / self.station_bin))
        edges = np.linspace(0.0, ref.length, n_bins + 1)
        for centre in lane_centres:
            members = arr[np.abs(arr[:, 1] - centre) <= 1.6]
            if members.shape[0] < 20:
                continue
            pts = []
            for b in range(n_bins):
                in_bin = members[(members[:, 0] >= edges[b])
                                 & (members[:, 0] < edges[b + 1])]
                if in_bin.shape[0] < 3:
                    continue
                s_mid = float(in_bin[:, 0].mean())
                d_mid = float(np.median(in_bin[:, 1]))
                base = ref.point_at(s_mid)
                normal = ref.normal_at(s_mid)
                pts.append(base + d_mid * normal)
            if len(pts) >= 2:
                try:
                    lanes.append(Polyline(np.array(pts)))
                except Exception:
                    continue
        return lanes

    # ------------------------------------------------------------------
    def _score(self, centerlines: Sequence[Polyline]) -> ErrorStats:
        true_lines = [lane.centerline for lane in self.truth.lanes()]
        errors: List[float] = []
        for inferred in centerlines:
            for p in inferred.resample(15.0).points:
                errors.append(min(line.distance_to(p) for line in true_lines))
        if not errors:
            errors = [float("nan")]
        return error_stats(errors)


def _lateral_peaks(laterals: np.ndarray, lane_pitch: float = 3.5,
                   min_fraction: float = 0.12) -> List[float]:
    """Find lane-centre offsets as peaks of the lateral histogram."""
    if laterals.size < 10:
        return []  # a handful of probes does not define a lane
    bins = np.arange(laterals.min() - 1.0, laterals.max() + 1.0, 0.5)
    if bins.size < 3:
        return []
    counts, edges = np.histogram(laterals, bins=bins)
    total = counts.sum()
    centres: List[float] = []
    order = np.argsort(-counts)
    for i in order:
        if counts[i] < min_fraction * total / 2:
            break
        candidate = float((edges[i] + edges[i + 1]) / 2.0)
        if all(abs(candidate - c) >= lane_pitch * 0.7 for c in centres):
            # Refine with the local mean.
            members = laterals[np.abs(laterals - candidate) <= 1.2]
            if members.size:
                centres.append(float(members.mean()))
    return sorted(centres)
