"""Indoor ATV: keep a smart-factory HD map's safety signage up to date.

Reproduces the Tas et al. workflow: an automated transfer vehicle drives
the aisles under visual SLAM, builds a virtual sign map, and batches the
differences against the valid HD map into an update patch.

Run:  python examples/indoor_atv.py
"""

import numpy as np

from repro import VersionedMap, generate_factory_floor
from repro.atv import AtvSignUpdater, VisualSlam
from repro.world import ChangeSpec, apply_changes
from repro.world.traffic import drive_lane_sequence


def main() -> None:
    rng = np.random.default_rng(55)
    factory = generate_factory_floor(rng, aisles=5, aisle_length=80.0)
    print(f"factory floor: {factory.counts_by_kind()}")

    scenario = apply_changes(factory,
                             ChangeSpec(add_signs=2, remove_signs=2), rng)
    print(f"{scenario.n_changes} sign changes on the floor "
          f"(new/missing safety signs)")

    database = VersionedMap(scenario.prior.copy())
    updater = AtvSignUpdater(database.map)

    total_found = 0
    for lane in [l for l in scenario.reality.lanes() if l.length > 40]:
        trajectory = drive_lane_sequence(scenario.reality, [lane.id],
                                         rng=rng, lateral_sigma=0.05)
        anchors = [lane.centerline.point_at(float(s)).copy()
                   for s in np.arange(0.0, lane.length + 1.0, 20.0)]
        report = updater.run(scenario, trajectory, VisualSlam(anchors), rng)
        if report.detected_changes:
            print(f"  aisle {lane.id}: {len(report.detected_changes)} "
                  f"change(s), precision {100 * report.precision:.0f} %")
            database.apply(report.patch)
            total_found += len(report.detected_changes)

    print(f"\nmap database now at version {database.version}; "
          f"{total_found} changes applied")


if __name__ == "__main__":
    main()
