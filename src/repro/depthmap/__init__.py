"""Full-HD depth-map upsampling (Chen et al. [19])."""

from repro.depthmap.wmof import WeightedModeFilter, WmofStats

__all__ = ["WeightedModeFilter", "WmofStats"]
