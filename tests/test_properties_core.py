"""Hypothesis property tests on the HD-map container and patch system."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HDMap,
    Lane,
    MapPatch,
    SignType,
    TrafficSign,
    VersionedMap,
)
from repro.core.ids import ElementId
from repro.errors import UnknownElementError
from repro.geometry.polyline import straight

positions = st.tuples(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)


def _map_with_signs(sign_positions):
    hdmap = HDMap("prop")
    hdmap.create(Lane, centerline=straight([0, 0], [100, 0]))
    for x, y in sign_positions:
        hdmap.create(TrafficSign, position=np.array([x, y]),
                     sign_type=SignType.STOP)
    return hdmap


class TestHDMapProperties:
    @given(st.lists(positions, min_size=1, max_size=15))
    @settings(deadline=None, max_examples=40)
    def test_landmarks_in_radius_is_exact(self, sign_positions):
        hdmap = _map_with_signs(sign_positions)
        centre = np.array([0.0, 0.0])
        radius = 5000.0
        found = {lm.id for lm in hdmap.landmarks_in_radius(0.0, 0.0, radius)}
        expected = {
            s.id for s in hdmap.signs()
            if float(np.hypot(*(s.position - centre))) <= radius
        }
        assert found == expected

    @given(st.lists(positions, min_size=1, max_size=10))
    @settings(deadline=None, max_examples=40)
    def test_remove_then_absent_everywhere(self, sign_positions):
        hdmap = _map_with_signs(sign_positions)
        victim = next(iter(hdmap.signs()))
        hdmap.remove(victim.id)
        assert victim.id not in hdmap
        assert victim.id not in {s.id for s in hdmap.signs()}
        assert victim.id not in {
            lm.id for lm in hdmap.landmarks_in_radius(
                float(victim.position[0]), float(victim.position[1]), 10.0)
        }
        with pytest.raises(UnknownElementError):
            hdmap.get(victim.id)

    @given(st.lists(positions, min_size=1, max_size=10))
    @settings(deadline=None, max_examples=30)
    def test_copy_equivalence(self, sign_positions):
        hdmap = _map_with_signs(sign_positions)
        clone = hdmap.copy()
        assert clone.counts_by_kind() == hdmap.counts_by_kind()
        assert {e.id for e in clone.elements()} == {
            e.id for e in hdmap.elements()}


class TestPatchProperties:
    @given(st.lists(positions, min_size=1, max_size=8),
           st.lists(positions, min_size=1, max_size=8))
    @settings(deadline=None, max_examples=30)
    def test_patch_apply_then_inverse_restores(self, initial, added):
        vm = VersionedMap(_map_with_signs(initial))
        before_ids = {e.id for e in vm.map.elements()}

        patch = MapPatch(source="prop")
        new_ids = []
        for x, y in added:
            sign = TrafficSign(id=vm.map.new_id("sign"),
                               position=np.array([x, y]),
                               sign_type=SignType.DIRECTION)
            patch.add(sign)
            new_ids.append(sign.id)
        vm.apply(patch)
        assert {e.id for e in vm.map.elements()} == before_ids | set(new_ids)

        inverse = MapPatch(source="prop-undo")
        for eid in new_ids:
            inverse.remove(eid)
        vm.apply(inverse)
        assert {e.id for e in vm.map.elements()} == before_ids

    @given(st.lists(positions, min_size=2, max_size=8))
    @settings(deadline=None, max_examples=30)
    def test_failed_patch_never_partially_applies(self, sign_positions):
        vm = VersionedMap(_map_with_signs(sign_positions))
        before_ids = {e.id for e in vm.map.elements()}
        version_before = vm.version
        bad = MapPatch(source="bad")
        victims = [s.id for s in vm.map.signs()]
        for eid in victims:
            bad.remove(eid)
        bad.remove(ElementId("sign", 10 ** 9))  # guaranteed failure at end
        with pytest.raises(UnknownElementError):
            vm.apply(bad)
        assert {e.id for e in vm.map.elements()} == before_ids
        assert vm.version == version_before

    @given(st.lists(positions, min_size=1, max_size=6))
    @settings(deadline=None, max_examples=30)
    def test_changes_since_is_complete(self, added):
        vm = VersionedMap(_map_with_signs([(0.0, 0.0)]))
        for x, y in added:
            patch = MapPatch(source="p")
            patch.add(TrafficSign(id=vm.map.new_id("sign"),
                                  position=np.array([x, y]),
                                  sign_type=SignType.STOP))
            vm.apply(patch)
        assert len(vm.changes_since(0)) == len(added)
        assert len(vm.changes_since(vm.version)) == 0


class TestDistributionProperty:
    @given(st.lists(positions, min_size=1, max_size=6))
    @settings(deadline=None, max_examples=20)
    def test_client_converges_after_any_patch_sequence(self, patches):
        from repro.update.distribution import (
            MapDistributionServer,
            VehicleMapClient,
        )

        server = MapDistributionServer(_map_with_signs([(0.0, 0.0)]))
        client = VehicleMapClient(server)
        for x, y in patches:
            patch = MapPatch(source="p", confidence=0.9)
            patch.add(TrafficSign(id=server.db.map.new_id("sign"),
                                  position=np.array([x, y]),
                                  sign_type=SignType.STOP))
            server.ingest(patch)
        client.sync()
        assert client.is_consistent()
