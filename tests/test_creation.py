"""Map-creation pipelines: accuracy shapes from the survey."""

import numpy as np
import pytest

from repro.creation import (
    AerialGroundMapper,
    CrowdMapper,
    FeatureLayerMapper,
    LaneGraphBuilder,
    LidarMappingPipeline,
    ProbeMapper,
    SmartphoneMapper,
    SurveyRigMapper,
    TrafficLightRecognizer,
    render_aerial,
)
from repro.creation.aerial import gps_imu_baseline
from repro.creation.crowdsource import _greedy_cluster, _merge_close
from repro.sensors import ProbeGenerator, SensorGrade
from repro.world import drive_lane_sequence, drive_route, generate_highway


@pytest.fixture(scope="module")
def world():
    """A medium highway plus a pool of fleet trajectories."""
    rng = np.random.default_rng(400)
    hw = generate_highway(rng, length=1500.0, sign_spacing=150.0,
                          pole_spacing=80.0)
    lane = next(iter(hw.lanes()))
    trajectories = [drive_route(hw, lane.id, 1400.0, rng) for _ in range(12)]
    return hw, trajectories


class TestClusterHelpers:
    def test_greedy_cluster_separates(self, rng):
        a = rng.normal([0, 0], 0.1, size=(20, 2))
        b = rng.normal([10, 0], 0.1, size=(15, 2))
        clusters = _greedy_cluster(np.vstack([a, b]), radius=2.0)
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [15, 20]

    def test_merge_close(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [10.0, 0.0]])
        merged = _merge_close(pts, 1.0)
        assert merged.shape[0] == 2


class TestCrowdsource:
    def test_fleet_reaches_sub_half_metre(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(77)
        mapper = CrowdMapper()
        contribs = [mapper.collect(hw, t, i, rng)
                    for i, t in enumerate(trajectories)]
        result = mapper.fuse(contribs, hw)
        assert result.matched >= 5
        assert result.error.mean < 0.5  # paper: < 0.2 m band

    def test_feedback_estimates_bias(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(78)
        mapper = CrowdMapper(feedback_rounds=3)
        contribs = [mapper.collect(hw, t, i, rng)
                    for i, t in enumerate(trajectories[:6])]
        mapper.fuse(contribs, hw)
        # After feedback, most vehicles should carry a nonzero bias estimate.
        assert sum(float(np.hypot(*c.bias)) > 0.05 for c in contribs) >= 3

    def test_fleet_beats_single_vehicle(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(79)
        mapper = CrowdMapper()
        solo = mapper.fuse([mapper.collect(hw, trajectories[0], 0, rng)], hw)
        fleet = mapper.fuse([mapper.collect(hw, t, i, rng)
                             for i, t in enumerate(trajectories)], hw)
        assert fleet.error.mean < solo.error.mean


class TestLidarPipeline:
    def test_extracts_boundaries_and_scores(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(80)
        pipeline = LidarMappingPipeline(scan_stride_s=2.0)
        result = pipeline.run(hw, trajectories[0], rng)
        assert result.cloud_points > 10000
        assert result.left_boundary is not None
        assert result.right_boundary is not None
        # Survey band: ~1.8 m average absolute error at km scale.
        assert result.boundary_error.mean < 5.0

    def test_error_grows_with_scene_length(self):
        rng = np.random.default_rng(81)
        hw = generate_highway(rng, length=3000.0)
        lane = next(iter(hw.lanes()))
        pipeline = LidarMappingPipeline(scan_stride_s=2.0)
        short_traj = drive_route(hw, lane.id, 100.0, rng)
        long_traj = drive_route(hw, lane.id, 2900.0, rng)
        # Same trajectory start; drift accumulates with distance.
        short = pipeline.run(hw, short_traj, rng)
        long_ = pipeline.run(hw, long_traj, rng)
        assert long_.trajectory_drift > short.trajectory_drift


class TestProbeMapper:
    def _traces(self, hw, trajectories, rng, with_sensors):
        gen = ProbeGenerator(with_sensors=with_sensors)
        return gen.generate_fleet(hw, trajectories, rng)

    def test_gps_only_metre_level(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(82)
        traces = self._traces(hw, trajectories, rng, with_sensors=False)
        result = ProbeMapper(hw, use_lane_sensor=False).build(traces)
        assert result.lanes_found > 0
        assert 0.2 < result.centerline_error.mean < 4.0

    def test_sensor_fusion_improves(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(83)
        plain = ProbeMapper(hw, use_lane_sensor=False).build(
            self._traces(hw, trajectories, rng, with_sensors=False))
        rng = np.random.default_rng(83)
        fused = ProbeMapper(hw, use_lane_sensor=True).build(
            self._traces(hw, trajectories, rng, with_sensors=True))
        assert fused.centerline_error.mean <= plain.centerline_error.mean


class TestSmartphone:
    def test_sub_three_metres(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(84)
        result = SmartphoneMapper().run(hw, trajectories[0], rng)
        assert result.error.mean < 3.0  # the paper's headline bound
        assert result.error.mean < result.raw_gnss_error.mean


class TestSurveyRig:
    def test_centimetre_level(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(85)
        result = SurveyRigMapper().run(hw, trajectories[0], rng)
        assert result.matched >= 3
        assert result.error.mean < 0.15  # paper: ~2 cm band

    def test_accuracy_ladder(self, world):
        """Survey rig < crowd fleet < smartphone (the survey's ladder)."""
        hw, trajectories = world
        rng = np.random.default_rng(86)
        survey = SurveyRigMapper().run(hw, trajectories[0], rng)
        crowd_mapper = CrowdMapper()
        crowd = crowd_mapper.fuse(
            [crowd_mapper.collect(hw, t, i, rng)
             for i, t in enumerate(trajectories[:8])], hw)
        phone = SmartphoneMapper().run(hw, trajectories[0], rng)
        assert survey.error.mean < crowd.error.mean < phone.error.mean


class TestAerial:
    def test_aerial_plus_ground_beats_gps_imu(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(87)
        aerial, _ = render_aerial(hw, rng, resolution=0.5)
        segment = next(iter(hw.segments()))
        truth_line = segment.reference_line
        prior = truth_line.simplify(5.0)  # coarse navigation-map prior
        mapper = AerialGroundMapper()
        result = mapper.run(hw, aerial, prior, truth_line,
                            trajectories[0], rng)
        baseline = gps_imu_baseline(truth_line, trajectories[0], rng)
        assert result.error.mean < baseline.mean
        assert result.error.mean < 1.0  # paper: 0.57 m vs 1.67 m


class TestTrafficLights:
    def test_map_prior_beats_no_map(self):
        rng = np.random.default_rng(88)
        from repro.world import generate_grid_city

        city = generate_grid_city(rng, 2, 2, block_size=150.0)
        lane = max(city.lanes(), key=lambda l: l.length)
        traj = drive_lane_sequence(city, [lane.id], rng=rng)
        with_map = TrafficLightRecognizer(city).run(city, traj, rng)
        rng = np.random.default_rng(88)
        without = TrafficLightRecognizer(None).run(city, traj, rng)
        assert with_map.average_precision > without.average_precision

    def test_interframe_filter_fixes_flicker(self):
        from repro.creation.traffic_lights import InterFrameFilter
        from repro.core.elements import LightState
        from repro.core.ids import ElementId

        f = InterFrameFilter(window=5)
        light = ElementId("light", 1)
        states = [LightState.RED] * 3 + [LightState.GREEN] + [LightState.RED]
        out = [f.push(light, s) for s in states]
        assert out[-1] is LightState.RED
        assert out[3] is LightState.RED  # single-frame flicker suppressed


class TestLaneGraph:
    def test_lane_counts_and_geometry(self, world):
        hw, trajectories = world
        rng = np.random.default_rng(89)
        builder = LaneGraphBuilder(hw)
        frames = []
        for traj in trajectories[:4]:
            frames.extend(builder.collect(traj, rng, stride_s=2.0))
        result = builder.build(frames)
        assert result.lanes  # produced lane centerlines
        assert result.centerline_error.mean < 1.0
        assert result.lane_count_accuracy >= 0.0  # computed without error


class TestFeatureLayers:
    def test_map_relative_beats_gnss(self):
        rng = np.random.default_rng(90)
        from repro.world import generate_grid_city

        city = generate_grid_city(rng, 2, 2, block_size=150.0)
        if not list(city.markings()):
            pytest.skip("no markings generated in this seed")
        lane = max(city.lanes(), key=lambda l: l.length)
        trajs = [drive_lane_sequence(city, [lane.id], rng=rng)
                 for _ in range(6)]
        relative = FeatureLayerMapper(city, map_relative=True)
        absolute = FeatureLayerMapper(city, map_relative=False)
        rel_obs, abs_obs = [], []
        for traj in trajs:
            rel_obs.extend(relative.collect(city, traj, rng))
            abs_obs.extend(absolute.collect(city, traj, rng))
        rel_result = relative.fuse(rel_obs, city)
        abs_result = absolute.fuse(abs_obs, city)
        if rel_result.positions.shape[0] and abs_result.positions.shape[0]:
            assert rel_result.error.mean < abs_result.error.mean
        assert rel_result.error.mean < 0.5 or np.isnan(rel_result.error.mean)
