"""Rule-aware longitudinal behavior: the regulatory layer in action.

The survey's relational layer exists so a machine consumer can *obey* the
map: speed limits (possibly tightened by regulatory elements), traffic
lights, stop signs, and a safe gap to the lead vehicle. ``BehaviorPlanner``
turns the map's rules plus the perceived scene into a target speed via an
IDM-style longitudinal law — the "driving decisions in real time" the
survey's perception section feeds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import Lane, LightState, SignType, TrafficLight, TrafficSign
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.geometry.transform import SE2


class BehaviorState(enum.Enum):
    CRUISE = "cruise"
    FOLLOW = "follow"
    STOPPING_LIGHT = "stopping_light"
    STOPPING_SIGN = "stopping_sign"


@dataclass
class BehaviorDecision:
    state: BehaviorState
    target_speed: float
    reason: str
    stop_distance: Optional[float] = None  # metres to the stop point


@dataclass
class LeadVehicle:
    gap: float  # bumper distance along the lane, metres
    speed: float


class BehaviorPlanner:
    """Map-rule + scene -> target speed."""

    def __init__(self, hdmap: HDMap,
                 comfortable_decel: float = 2.0,
                 time_headway: float = 1.6,
                 min_gap: float = 4.0,
                 light_lookahead: float = 80.0,
                 sign_lookahead: float = 40.0,
                 light_lateral_gate: float = 15.0) -> None:
        self.map = hdmap
        self.comfortable_decel = comfortable_decel
        self.time_headway = time_headway
        self.min_gap = min_gap
        self.light_lookahead = light_lookahead
        self.sign_lookahead = sign_lookahead
        self.light_lateral_gate = light_lateral_gate

    # ------------------------------------------------------------------
    def decide(self, pose: SE2, speed: float, t: float,
               lead: Optional[LeadVehicle] = None) -> BehaviorDecision:
        lane, _ = self.map.nearest_lane(pose.x, pose.y)
        limit = self.map.effective_speed_limit(lane.id)
        s, _ = lane.centerline.project(np.array([pose.x, pose.y]))

        # Red/yellow light ahead on this lane?
        stop = self._next_stop(lane, s, t)
        if stop is not None:
            distance, why, state = stop
            target = self._speed_for_stop(speed, distance)
            return BehaviorDecision(state=state,
                                    target_speed=min(target, limit),
                                    reason=why, stop_distance=distance)

        # Lead vehicle?
        if lead is not None:
            desired_gap = self.min_gap + self.time_headway * speed
            if lead.gap < desired_gap * 1.5:
                target = self._idm_speed(speed, limit, lead)
                return BehaviorDecision(state=BehaviorState.FOLLOW,
                                        target_speed=target,
                                        reason=f"lead at {lead.gap:.0f} m")

        return BehaviorDecision(state=BehaviorState.CRUISE,
                                target_speed=limit,
                                reason=f"limit {limit * 3.6:.0f} km/h")

    # ------------------------------------------------------------------
    def _next_stop(self, lane: Lane, s: float, t: float
                   ) -> Optional[Tuple[float, str, BehaviorState]]:
        """Distance to the nearest red light / stop sign ahead, if any."""
        ahead_end = min(lane.length, s + self.light_lookahead)
        if ahead_end - s < 1.0:
            return None
        probe = lane.centerline.point_at(ahead_end)
        centre_x = (probe[0] + lane.centerline.point_at(s)[0]) / 2.0
        centre_y = (probe[1] + lane.centerline.point_at(s)[1]) / 2.0
        radius = self.light_lookahead / 2.0 + self.light_lateral_gate
        best: Optional[Tuple[float, str, BehaviorState]] = None
        for lm in self.map.landmarks_in_radius(centre_x, centre_y, radius):
            if isinstance(lm, TrafficLight):
                state = lm.state_at(t)
                if state is LightState.GREEN:
                    continue
                s_lm, d_lm = lane.centerline.project(lm.position)
                if not (s < s_lm <= s + self.light_lookahead):
                    continue
                if abs(d_lm) > self.light_lateral_gate:
                    continue
                distance = s_lm - s
                if best is None or distance < best[0]:
                    best = (distance, f"{state.value} light in {distance:.0f} m",
                            BehaviorState.STOPPING_LIGHT)
            elif isinstance(lm, TrafficSign) and lm.sign_type is SignType.STOP:
                s_lm, d_lm = lane.centerline.project(lm.position)
                if not (s < s_lm <= s + self.sign_lookahead):
                    continue
                if abs(d_lm) > self.light_lateral_gate:
                    continue
                distance = s_lm - s
                if best is None or distance < best[0]:
                    best = (distance, f"stop sign in {distance:.0f} m",
                            BehaviorState.STOPPING_SIGN)
        return best

    def _speed_for_stop(self, speed: float, distance: float) -> float:
        """Comfortable-deceleration speed envelope to a stop point."""
        margin = max(distance - 2.0, 0.0)
        return float(np.sqrt(2.0 * self.comfortable_decel * margin))

    def _idm_speed(self, speed: float, limit: float,
                   lead: LeadVehicle) -> float:
        """Intelligent-driver-model-flavoured following speed."""
        desired_gap = (self.min_gap + self.time_headway * speed
                       + speed * max(0.0, speed - lead.speed)
                       / (2.0 * np.sqrt(self.comfortable_decel * 2.0)))
        ratio = np.clip(lead.gap / max(desired_gap, 1e-6), 0.0, 2.0)
        target = limit * (1.0 - np.exp(-ratio)) + lead.speed * np.exp(-ratio)
        return float(np.clip(target, 0.0, limit))


def simulate_approach(planner: BehaviorPlanner, lane_id: ElementId,
                      t0: float, dt: float = 0.5,
                      initial_speed: float = 10.0,
                      max_steps: int = 400) -> List[Tuple[float, float, BehaviorDecision]]:
    """Roll a vehicle down a lane under the planner; returns (s, v, decision).

    Speed tracks the decision's target with bounded accel/decel.
    """
    lane = planner.map.get(lane_id)
    assert isinstance(lane, Lane)
    s = 0.0
    v = initial_speed
    t = t0
    history = []
    for _ in range(max_steps):
        if s >= lane.length - 0.5:
            break
        point = lane.centerline.point_at(s)
        pose = SE2(float(point[0]), float(point[1]),
                   lane.centerline.heading_at(s))
        decision = planner.decide(pose, v, t)
        accel = np.clip((decision.target_speed - v) / dt, -4.0, 2.0)
        v = max(0.0, v + accel * dt)
        s += v * dt
        t += dt
        history.append((s, v, decision))
        if v < 0.05 and decision.state in (BehaviorState.STOPPING_LIGHT,
                                           BehaviorState.STOPPING_SIGN):
            # Hold at the stop until the light turns (or break for signs).
            if decision.state is BehaviorState.STOPPING_SIGN:
                break
    return history
