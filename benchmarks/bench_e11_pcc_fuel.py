"""E11 — Chu et al. [61]: predictive cruise control with HD-map slope data.

Paper: 8.73 % fuel saving over a 370 km route versus a factory adaptive
cruise control. Shape: several-percent saving against the constant-speed
baseline, and a positive saving even when travel time is matched.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.planning import (
    FuelModel,
    PccPlanner,
    constant_speed_profile,
    simulate_fuel,
)
from repro.world import ElevationProfile


def _experiment(rng):
    # 100 km of rolling terrain (the paper's route is 370 km; the saving
    # fraction converges long before that).
    profile = ElevationProfile.rolling(100000.0, rng, max_grade=0.05)
    model = FuelModel()
    set_speed = 25.0

    stations, speeds = constant_speed_profile(profile, set_speed)
    base_fuel, base_time = simulate_fuel(profile, stations, speeds, model)

    result = PccPlanner(time_penalty_litres_per_s=0.0006).plan(profile,
                                                               set_speed)
    # Time-matched baseline: constant speed with the same mean speed.
    st_eq, sp_eq = constant_speed_profile(profile, result.mean_speed())
    eq_fuel, eq_time = simulate_fuel(profile, st_eq, sp_eq, model)
    return base_fuel, base_time, result, eq_fuel


def test_e11_pcc_fuel_saving(benchmark, rng):
    base_fuel, base_time, result, eq_fuel = once(benchmark, _experiment, rng)

    saving = 100 * (base_fuel - result.fuel_litres) / base_fuel
    matched = 100 * (eq_fuel - result.fuel_litres) / eq_fuel
    table = ResultTable("E11", "predictive cruise control fuel saving [61]")
    table.add("saving vs set-speed ACC", "8.73 %", f"{saving:.2f} %",
              ok=2.0 < saving < 20.0)
    table.add("time-matched saving", "(positive)", f"{matched:.2f} %",
              ok=matched > 0.5)
    table.add("travel-time ratio", "~1", f"{result.travel_time / base_time:.3f}",
              ok=result.travel_time / base_time < 1.15)
    table.print()
    assert table.all_ok()
