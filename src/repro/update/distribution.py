"""Map distribution: the shared HD-map database and its subscribers.

SLAMCU's detected changes "are reported to the HD map database for
sharing with other vehicles/systems" [41]; Pannen et al.'s jobs feed a
fleet-wide map [44]. This module is that database: it ingests patches
from multiple independent pipelines with conflict resolution, versions
them atomically, and lets vehicles synchronize incrementally ("give me
everything since version N") instead of re-downloading the map.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.changes import MapChange
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.versioning import (
    AddElement,
    MapPatch,
    RemoveElement,
    ReplaceElement,
    VersionedMap,
)
from repro.errors import UpdateError


class ConflictPolicy(enum.Enum):
    REJECT = "reject"  # refuse patches touching recently-touched elements
    LAST_WRITER_WINS = "last_writer_wins"
    HIGHEST_CONFIDENCE = "highest_confidence"


@dataclass
class IngestResult:
    accepted: bool
    version: Optional[int]
    dropped_ops: int
    reason: str = ""


@dataclass
class _Provenance:
    source: str
    confidence: float
    version: int


class MapDistributionServer:
    """The authoritative, versioned HD-map database."""

    def __init__(self, base: HDMap,
                 policy: ConflictPolicy = ConflictPolicy.HIGHEST_CONFIDENCE,
                 conflict_window: int = 3) -> None:
        self.db = VersionedMap(base)
        self.policy = policy
        self.conflict_window = conflict_window
        self._touched: Dict[ElementId, _Provenance] = {}

    @property
    def version(self) -> int:
        return self.db.version

    # ------------------------------------------------------------------
    def _op_target(self, op) -> ElementId:
        if isinstance(op, AddElement):
            return op.element.id
        if isinstance(op, RemoveElement):
            return op.element_id
        if isinstance(op, ReplaceElement):
            return op.element.id
        raise UpdateError(f"unknown op {op!r}")

    def _conflicts(self, patch: MapPatch) -> List[Tuple[object, _Provenance]]:
        out = []
        for op in patch.ops:
            target = self._op_target(op)
            previous = self._touched.get(target)
            if previous is None:
                continue
            if self.version - previous.version < self.conflict_window:
                out.append((op, previous))
        return out

    # ------------------------------------------------------------------
    def ingest(self, patch: MapPatch) -> IngestResult:
        """Apply a pipeline's patch under the conflict policy."""
        if not patch.ops:
            return IngestResult(False, None, 0, "empty patch")
        conflicts = self._conflicts(patch)
        ops = list(patch.ops)
        dropped = 0
        if conflicts:
            if self.policy is ConflictPolicy.REJECT:
                return IngestResult(False, None, len(ops),
                                    f"{len(conflicts)} conflicting op(s)")
            if self.policy is ConflictPolicy.HIGHEST_CONFIDENCE:
                losing = {id(op) for op, prev in conflicts
                          if patch.confidence <= prev.confidence}
                dropped = len(losing)
                ops = [op for op in ops if id(op) not in losing]
            # LAST_WRITER_WINS keeps every op.
        if not ops:
            return IngestResult(False, None, dropped,
                                "all ops lost their conflicts")
        filtered = MapPatch(ops=ops, source=patch.source,
                            confidence=patch.confidence)
        version = self.db.apply(filtered)
        for op in ops:
            self._touched[self._op_target(op)] = _Provenance(
                source=patch.source, confidence=patch.confidence,
                version=version)
        return IngestResult(True, version, dropped)

    # ------------------------------------------------------------------
    def changes_since(self, version: int) -> List[MapChange]:
        return self.db.changes_since(version)

    def snapshot(self) -> HDMap:
        return self.db.map.copy()


@dataclass
class VehicleMapClient:
    """A vehicle's local map, kept current by incremental sync."""

    server: MapDistributionServer
    local: HDMap = None  # type: ignore[assignment]
    synced_version: int = -1
    bytes_downloaded: int = 0

    CHANGE_RECORD_BYTES = 48

    def __post_init__(self) -> None:
        if self.local is None:
            self.bootstrap()

    def bootstrap(self) -> None:
        """Full download (what incremental sync avoids afterwards)."""
        from repro.storage.binary import encode_map

        snapshot = self.server.snapshot()
        self.bytes_downloaded += len(encode_map(snapshot))
        self.local = snapshot
        self.synced_version = self.server.version

    def sync(self) -> int:
        """Incremental update; returns the number of changes applied.

        Change records describe what happened; the client re-fetches the
        touched elements from the server snapshot (element-level delta).
        """
        if self.synced_version == self.server.version:
            return 0
        changes = self.server.changes_since(self.synced_version)
        snapshot = self.server.db.map
        applied = 0
        for change in changes:
            eid = change.element_id
            self.bytes_downloaded += self.CHANGE_RECORD_BYTES
            in_server = eid in snapshot
            in_local = eid in self.local
            if in_server:
                import copy

                element = copy.copy(snapshot.get(eid))
                if in_local:
                    self.local.replace(element)
                else:
                    self.local.add(element)
            elif in_local:
                self.local.remove(eid)
            applied += 1
        self.synced_version = self.server.version
        return applied

    def is_consistent(self) -> bool:
        """Local matches the server snapshot element-for-element."""
        server_ids = {e.id for e in self.server.db.map.elements()}
        local_ids = {e.id for e in self.local.elements()}
        return server_ids == local_ids
