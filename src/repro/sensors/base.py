"""Shared sensor plumbing: grades and noise parameter bundles."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SensorGrade(enum.Enum):
    """Equipment tiers the survey's accuracy ladder spans.

    - SURVEY: dedicated mobile-mapping rig (DGPS + tactical IMU + LiDAR),
      the kind HERE/Waymo drive — centimetre-level [35], [68];
    - AUTOMOTIVE: series-production ADAS sensors — decimetre GNSS after
      augmentation, consumer IMU [54], [29];
    - SMARTPHONE: phone GNSS/IMU [34] — metre-level.
    """

    SURVEY = "survey"
    AUTOMOTIVE = "automotive"
    SMARTPHONE = "smartphone"


@dataclass(frozen=True)
class GnssNoise:
    """GNSS error model: white noise + slowly walking bias (multipath etc.)."""

    white_sigma: float  # per-fix white noise, metres (1-D)
    bias_sigma: float  # stationary bias magnitude, metres (1-D)
    bias_tau: float  # bias correlation time, seconds


@dataclass(frozen=True)
class ImuNoise:
    gyro_sigma: float  # rad/s white
    gyro_bias_sigma: float  # rad/s bias random walk scale
    accel_sigma: float  # m/s^2 white


GNSS_NOISE_BY_GRADE = {
    # RTK/DGPS fixed solution: ~1-2 cm.
    SensorGrade.SURVEY: GnssNoise(white_sigma=0.012, bias_sigma=0.005, bias_tau=120.0),
    # SBAS-corrected automotive GNSS: ~0.5-1.5 m.
    SensorGrade.AUTOMOTIVE: GnssNoise(white_sigma=0.6, bias_sigma=0.8, bias_tau=60.0),
    # Phone GNSS in urban conditions: several metres.
    SensorGrade.SMARTPHONE: GnssNoise(white_sigma=2.5, bias_sigma=2.0, bias_tau=45.0),
}

IMU_NOISE_BY_GRADE = {
    SensorGrade.SURVEY: ImuNoise(gyro_sigma=2e-4, gyro_bias_sigma=1e-6, accel_sigma=5e-3),
    SensorGrade.AUTOMOTIVE: ImuNoise(gyro_sigma=2e-3, gyro_bias_sigma=2e-5, accel_sigma=5e-2),
    SensorGrade.SMARTPHONE: ImuNoise(gyro_sigma=8e-3, gyro_bias_sigma=1e-4, accel_sigma=1.5e-1),
}
