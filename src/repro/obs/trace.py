"""Request/observation tracing: contextvars propagation + span recording.

One :class:`TraceContext` (trace id, span id, sampled bit) rides a
``contextvars.ContextVar`` through the synchronous parts of a request
and is carried *explicitly* across thread boundaries (a serve work item,
an ingest observation) so a single fleet request — or one observation's
journey from ``ObservationBus.enqueue`` through the stage pipeline to
``PatchPublisher`` and ``ChangesSince`` visibility — can be
reconstructed as a span tree afterwards.

Cost model, in order of importance:

1. **Disabled tracing is one attribute check** per instrumentation
   point (``Tracer.span`` returns the no-op singleton immediately).
2. **Unsampled traces allocate nothing**: the sampling decision is made
   once at the root; children of a no-op context are no-ops.
3. **Sampled spans append lock-free**: the :class:`SpanRecorder` ring
   buffer is written with a single CPython list-slot store (atomic
   under the GIL); only the optional JSONL sink takes a lock, and only
   for sampled spans.

Import discipline: stdlib-only, imported by hot-path modules — must
never import back into ``repro``.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class TraceContext:
    """Propagated identity of the active trace position.

    ``span_id`` is ``None`` for a context that names a trace but no
    parent span yet (a sampled root decision carried across a thread
    boundary before any span has opened).
    """

    trace_id: str
    span_id: Optional[str]
    sampled: bool = True


_ACTIVE: "contextvars.ContextVar[Optional[TraceContext]]" = \
    contextvars.ContextVar("repro_obs_trace", default=None)


class Span:
    """One timed, attributed operation; records itself on ``__exit__``."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s",
                 "end_s", "attrs", "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 start_s: float, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attrs = attrs
        self._token: Optional[contextvars.Token] = None

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id, True)

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def end(self, t: Optional[float] = None) -> None:
        if self.end_s is None:
            self.end_s = self._tracer._clock() if t is None else t

    def __enter__(self) -> "Span":
        self._token = _ACTIVE.set(self.context)
        return self

    def detach(self) -> None:
        """Deactivate without ending: for spans that outlive the thread's
        activation window and are finished later (e.g. a shard-side span
        closed from a worker future's callback). Must run in the thread
        that entered the span."""
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self.end()
        self._tracer._record(self)
        return False

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Do-nothing stand-in returned on every unsampled/disabled path."""

    __slots__ = ()
    context = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass

    def end(self, t: Optional[float] = None) -> None:
        pass

    def detach(self) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class SpanRecorder:
    """Bounded ring buffer of finished spans + optional JSONL sink.

    Appends are a counter increment plus one list-slot store — no lock —
    so recording in a serving worker never serializes against other
    workers. ``spans()`` reorders by append sequence; when the ring has
    wrapped, the oldest spans are gone (bounded memory by design).
    """

    def __init__(self, capacity: int = 4096,
                 jsonl_path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: List[Optional[tuple]] = [None] * capacity
        self._seq = itertools.count()
        self.jsonl_path = jsonl_path
        self._sink_lock = threading.Lock()
        self.dropped = 0  # overwritten ring slots since last clear

    def record(self, span: Span) -> None:
        seq = next(self._seq)
        slot = seq % self.capacity
        if self._ring[slot] is not None:
            self.dropped += 1
        self._ring[slot] = (seq, span)
        if self.jsonl_path is not None:
            line = json.dumps(span.as_dict(), sort_keys=True)
            with self._sink_lock:
                with open(self.jsonl_path, "a", encoding="utf-8") as f:
                    f.write(line + "\n")

    def drain(self, max_spans: Optional[int] = None
              ) -> List[Dict[str, object]]:
        """Take up to ``max_spans`` oldest spans out of the ring as dicts.

        The telemetry-harvest path: a shard drains its own ring in
        bounded batches and ships the dicts over RPC. Each slot is
        cleared only if it still holds the drained entry (an identity
        check, atomic under the GIL), so a concurrent ``record`` into
        the same slot is never lost — the newer span just ships with the
        next drain.
        """
        entries = [e for e in self._ring if e is not None]
        entries.sort(key=lambda e: e[0])
        if max_spans is not None:
            entries = entries[:max_spans]
        out: List[Dict[str, object]] = []
        for entry in entries:
            seq, span = entry
            slot = seq % self.capacity
            if self._ring[slot] is entry:
                self._ring[slot] = None
            out.append(span.as_dict())
        return out

    def ingest(self, spans: Iterable[Dict[str, object]]) -> int:
        """Record span dicts harvested from another process's recorder.

        Rebuilds lightweight :class:`Span` objects (already finished, so
        they never touch a tracer clock) and records them normally —
        including into the JSONL sink, so a merged dump contains the
        whole cross-process tree.
        """
        n = 0
        for d in spans:
            span = Span(None, str(d["name"]), str(d["trace_id"]),
                        str(d["span_id"]), d.get("parent_id"),
                        float(d["start_s"]), dict(d.get("attrs") or {}))
            end_s = d.get("end_s")
            span.end_s = None if end_s is None else float(end_s)
            self.record(span)
            n += 1
        return n

    # -- introspection --------------------------------------------------
    def spans(self) -> List[Span]:
        """Recorded spans in append order (oldest surviving first)."""
        entries = [e for e in self._ring if e is not None]
        entries.sort(key=lambda e: e[0])
        return [span for _, span in entries]

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans() if s.trace_id == trace_id]

    def span_tree(self, trace_id: str) -> List[Dict[str, object]]:
        """The trace's spans as root dicts with nested ``children``."""
        return build_tree([s.as_dict() for s in self.trace(trace_id)])

    def dump_jsonl(self, path: str) -> int:
        """Write every surviving span as one JSON object per line."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as f:
            for span in spans:
                f.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        return len(spans)

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._seq = itertools.count()
        self.dropped = 0


class Tracer:
    """Sampling span factory bound to a recorder and a clock.

    Sampling is deterministic (every ``round(1/sample_rate)``-th root),
    which keeps benchmarks reproducible and the overhead measurable.
    """

    def __init__(self, recorder: Optional[SpanRecorder] = None,
                 enabled: bool = False, sample_rate: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 id_prefix: str = "") -> None:
        self.recorder = recorder if recorder is not None else SpanRecorder()
        self.enabled = enabled
        self._clock = clock
        self._ids = itertools.count(1)
        self._sample_seq = itertools.count()
        self._every = 1
        #: Span-id namespace. Each process merging spans into a shared
        #: recorder must mint ids in its own namespace (shard workers use
        #: ``s<index>-<pid>-``) — per-process counters would otherwise
        #: collide when telemetry harvesting merges the rings.
        self.id_prefix = id_prefix
        self.set_sample_rate(sample_rate)

    # -- configuration --------------------------------------------------
    def set_sample_rate(self, rate: float) -> None:
        if rate <= 0.0:
            self._every = 0  # sample nothing
        else:
            self._every = max(1, int(round(1.0 / min(rate, 1.0))))
        self.sample_rate = rate

    def configure(self, enabled: Optional[bool] = None,
                  sample_rate: Optional[float] = None,
                  capacity: Optional[int] = None,
                  jsonl_path: Optional[str] = None,
                  reset: bool = False) -> "Tracer":
        """Reconfigure in place (the global tracer is shared by import)."""
        if capacity is not None:
            self.recorder = SpanRecorder(capacity, jsonl_path)
        elif jsonl_path is not None:
            self.recorder.jsonl_path = jsonl_path
        if reset:
            self.recorder.clear()
            self._sample_seq = itertools.count()
        if sample_rate is not None:
            self.set_sample_rate(sample_rate)
        if enabled is not None:
            self.enabled = enabled
        return self

    # -- internals ------------------------------------------------------
    def _sample(self) -> bool:
        if self._every == 0:
            return False
        return next(self._sample_seq) % self._every == 0

    def _new_id(self) -> str:
        return f"{self.id_prefix}{next(self._ids):012x}"

    def _record(self, span: Span) -> None:
        self.recorder.record(span)

    def _span(self, name: str, trace_id: str, parent_id: Optional[str],
              start_s: Optional[float], attrs: Dict[str, object]) -> Span:
        return Span(self, name, trace_id, self._new_id(), parent_id,
                    self._clock() if start_s is None else start_s, attrs)

    # -- public API -----------------------------------------------------
    def current(self) -> Optional[TraceContext]:
        """The active trace context of this thread/task, if sampled."""
        return _ACTIVE.get()

    def start_trace(self, name: str, **attrs):
        """Open a root span, making the sampling decision for the trace."""
        if not self.enabled or not self._sample():
            return NOOP_SPAN
        return self._span(name, f"t{self._new_id()}", None, None, attrs)

    def span(self, name: str, **attrs):
        """Open a child span of the current context (no-op outside one)."""
        if not self.enabled:
            return NOOP_SPAN
        ctx = _ACTIVE.get()
        if ctx is None:
            return NOOP_SPAN
        return self._span(name, ctx.trace_id, ctx.span_id, None, attrs)

    def propagate(self) -> Optional[TraceContext]:
        """Context to carry across a thread/queue boundary.

        Inside an active trace this is the current context. Outside one,
        a *new* sampled trace may start here (the sampling decision is
        made now, so the receiving thread only opens a span if this
        returns non-None). Returns None when tracing is off or the
        sampler says no.
        """
        if not self.enabled:
            return None
        ctx = _ACTIVE.get()
        if ctx is not None:
            return ctx
        if not self._sample():
            return None
        return TraceContext(f"t{self._new_id()}", None, True)

    def continue_from(self, ctx: Optional[TraceContext], name: str,
                      start_s: Optional[float] = None, **attrs):
        """Open a span under an explicitly carried context (cross-thread).

        ``start_s`` backdates the span (e.g. a queue-wait span whose
        start is the producer's enqueue stamp — same clock required).
        """
        if not self.enabled or ctx is None or not ctx.sampled:
            return NOOP_SPAN
        return self._span(name, ctx.trace_id, ctx.span_id, start_s, attrs)


#: Process-wide tracer; instrumentation points attach to this one.
TRACER = Tracer()


def configure_tracing(enabled: Optional[bool] = None,
                      sample_rate: Optional[float] = None,
                      capacity: Optional[int] = None,
                      jsonl_path: Optional[str] = None,
                      reset: bool = False) -> Tracer:
    """Convenience front door for the global :data:`TRACER`."""
    return TRACER.configure(enabled=enabled, sample_rate=sample_rate,
                            capacity=capacity, jsonl_path=jsonl_path,
                            reset=reset)


class _AttachedContext:
    """Context manager that re-activates a carried TraceContext."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self._ctx = ctx
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "_AttachedContext":
        if self._ctx is not None:
            self._token = _ACTIVE.set(self._ctx)
        return self

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False


def attach_context(ctx: Optional[TraceContext]) -> _AttachedContext:
    """Re-activate ``ctx`` in the current thread without opening a span.

    New threads start with an empty contextvar, so a scatter-gather
    worker spawned inside a traced request would silently lose the
    trace; the spawner captures :meth:`Tracer.current` and the worker
    runs under ``with attach_context(ctx):``. A ``None`` context is a
    no-op.
    """
    return _AttachedContext(ctx)


# -- offline span-tree tooling (CLI `obs trace`, smoke checks) ----------
def load_spans_jsonl(path: str) -> List[Dict[str, object]]:
    """Read a span dump written by :meth:`SpanRecorder.dump_jsonl`."""
    spans: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def build_tree(spans: Sequence[Dict[str, object]]
               ) -> List[Dict[str, object]]:
    """Nest span dicts by parent id; returns the roots.

    Spans whose parent is missing from the set (evicted from the ring,
    or genuinely unparented) surface as roots so nothing is silently
    dropped — :func:`verify_spans` is the strict check.
    """
    by_id = {s["span_id"]: dict(s, children=[]) for s in spans}
    roots: List[Dict[str, object]] = []
    for span in by_id.values():
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            by_id[parent]["children"].append(span)
        else:
            roots.append(span)
    for span in by_id.values():
        span["children"].sort(key=lambda s: s["start_s"])
    roots.sort(key=lambda s: s["start_s"])
    return roots


def format_trace(spans: Sequence[Dict[str, object]]) -> str:
    """Render one trace's spans as an indented tree with durations."""
    if not spans:
        return "(no spans)"
    t0 = min(float(s["start_s"]) for s in spans)
    lines: List[str] = []

    def render(span: Dict[str, object], depth: int) -> None:
        offset = 1e3 * (float(span["start_s"]) - t0)
        duration = 1e3 * float(span.get("duration_s") or 0.0)
        attrs = span.get("attrs") or {}
        extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(f"{'  ' * depth}{span['name']:<28} "
                     f"+{offset:8.2f}ms {duration:9.3f}ms"
                     f"{('  ' + extra) if extra else ''}")
        for child in span["children"]:
            render(child, depth + 1)

    for root in build_tree(spans):
        render(root, 0)
    return "\n".join(lines)


def verify_spans(spans: Iterable[Dict[str, object]]) -> List[str]:
    """Invariant check for a span dump (the CI obs-smoke gate).

    Every span must be finished (``end_s`` set, non-negative duration)
    and every non-root span's parent must exist within the same trace.
    Returns human-readable violations (empty = clean).
    """
    spans = list(spans)
    by_trace: Dict[str, Dict[str, Dict[str, object]]] = {}
    for span in spans:
        by_trace.setdefault(str(span["trace_id"]), {})[
            str(span["span_id"])] = span
    problems: List[str] = []
    for span in spans:
        label = f"{span['name']} ({span['trace_id']}/{span['span_id']})"
        if span.get("end_s") is None:
            problems.append(f"unfinished span: {label}")
        elif float(span["end_s"]) < float(span["start_s"]):
            problems.append(f"negative duration: {label}")
        parent = span.get("parent_id")
        if parent is not None and \
                str(parent) not in by_trace[str(span["trace_id"])]:
            problems.append(f"unparented span: {label} "
                            f"(parent {parent} not in trace)")
    return problems
