"""`ChaosHarness`: run the serve→ingest loop under a :class:`FaultPlan`.

The harness owns nothing the production stack doesn't already expose. It
wraps the real :class:`~repro.ingest.pipeline.IngestPipeline`,
:class:`~repro.update.distribution.MapDistributionServer`, and
:class:`~repro.serve.service.MapService` through their public injection
seams — the sensor stream it submits, the pipeline's ``delivery_hook``,
a thin server proxy on the publisher path, and plain requests against
the service — so a chaos run exercises exactly the code a production run
would, plus faults. Where each fault point plugs in:

- **sensor.*** — the submission tap: observations are dropped,
  re-uplinked, corrupted to a non-finite sigma (poison on arrival),
  held back and delivered out of order, or timestamp-skewed before they
  reach :meth:`IngestPipeline.submit`.
- **bus.*** / **pipeline.worker_crash** — the ``delivery_hook``: a
  worker stalls while holding its lease (slow consumer), stalls past the
  lease timeout (lease-expiry storm → redelivery → double processing),
  or raises and dies mid-batch (the supervisor restarts it and the lease
  expires).
- **pipeline.poison** — bursts of structurally invalid observations
  appended to the stream; they fail validation, burn their retry budget,
  and must land in the dead-letter queue without wedging a partition.
- **publish.transient** — ``_ChaosServerProxy`` raises
  :class:`~repro.ingest.publisher.TransientPublishError` from
  ``ingest``; the publisher's bounded retry absorbs or surfaces it.
- **publish.conflict** — a rogue writer floods ``ReplaceElement``
  patches against a stable prior sign straight into the *real* server,
  interleaving accepted version bumps and REJECT-policy conflicts with
  the pipeline's publishes.
- **serve.*** — a request phase against a :class:`MapService` over the
  same database: bursts concentrated on one tile, encoded-memo
  invalidation storms, and admission spikes beyond queue capacity.
- **geometry.*** — corrupt-geometry patches (degenerate lanes, broken
  boundary chains, orphaned regulatory elements) pushed straight at the
  publisher, upstream of nothing but the constraint verify gate; the
  fifth invariant demands every one in the quarantine store and a
  constraint-clean served map.

Determinism contract: the whole stream is submitted to the bus *before*
the stage workers start (the ingest-bench idiom), submission is
sequential per vehicle, and the default workload runs one worker — so
batch boundaries, fusion order, and published patches are a pure
function of (workload seed, fault plan). A run with an inert plan
(:meth:`FaultPlan.none`) therefore encodes its final map to exactly the
same bytes as :meth:`ChaosHarness.run_plain`, the same workload on an
unwrapped pipeline: the harness itself provably injects nothing.
:func:`repro.chaos.report.check_invariants` certifies the degradation
contract on the run's observable surfaces.
"""

from __future__ import annotations

import contextlib
import copy
import threading
import time
from dataclasses import dataclass
from typing import Iterator
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.faults import (
    BUS_LEASE_STORM,
    BUS_SLOW_CONSUMER,
    GEOMETRY_BROKEN_BOUNDARY,
    GEOMETRY_DEGENERATE_LANE,
    GEOMETRY_ORPHAN_REGULATORY,
    PIPELINE_POISON,
    PIPELINE_WORKER_CRASH,
    PUBLISH_CONFLICT,
    PUBLISH_TRANSIENT,
    SENSOR_CLOCK_SKEW,
    SENSOR_CORRUPT,
    SENSOR_DELAY,
    SENSOR_DROP,
    SENSOR_DUPLICATE,
    SERVE_HOT_SHARD,
    SERVE_INVALIDATION_STORM,
    SERVE_SPIKE,
    FaultPlan,
)
from repro.chaos.report import ChaosReport, check_invariants
from repro.core.elements import Lane, LaneBoundary, TrafficSign
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.regulatory import RegulatoryElement, RuleType
from repro.core.versioning import MapPatch
from repro.geometry.polyline import Polyline
from repro.ingest.fleetsource import FleetObservationSource
from repro.ingest.observation import Observation, ObservationKind
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.publisher import ConfirmedPatch, TransientPublishError
from repro.obs.log import EVENT_LOG
from repro.serve.admission import AdmissionPolicy
from repro.serve.api import GetTile, Priority
from repro.serve.service import MapService
from repro.storage.binary import encode_map
from repro.storage.tilestore import TileStore
from repro.update.distribution import ConflictPolicy, MapDistributionServer
from repro.world.scenario import ChangeSpec, Scenario, apply_changes


class _InjectedCrash(Exception):
    """Raised from the delivery hook to kill a worker thread.

    The hook runs before the guarded stage section on purpose, so this
    escapes the worker loop: the thread dies with the batch still
    leased, and recovery is the supervisor's job (restart + lease
    expiry), not the retry path's.
    """


@contextlib.contextmanager
def _quiet_injected_crashes() -> Iterator[None]:
    """Keep intentional worker crashes off stderr; the dead thread and
    the ``worker_restarted`` event are the observable record, not a
    traceback."""
    previous = threading.excepthook

    def hook(exc_info, /):
        if not issubclass(exc_info.exc_type, _InjectedCrash):
            previous(exc_info)

    threading.excepthook = hook
    try:
        yield
    finally:
        threading.excepthook = previous


@dataclass
class ChaosWorkload:
    """Shape of the workload driven under faults (small but complete)."""

    vehicles: int = 3
    routes_per_vehicle: int = 2
    route_length_m: float = 900.0
    step_s: float = 0.5
    remove_signs: int = 2
    add_signs: int = 2
    tile_size: float = 250.0
    n_workers: int = 1          # one worker keeps inert runs bit-deterministic
    n_partitions: int = 4
    max_batch: int = 16
    max_attempts: int = 4
    backoff_base_s: float = 0.005
    lease_timeout_s: float = 1.0
    supervisor_tick_s: float = 0.01
    stage_failure_threshold: int = 6
    breaker_cooldown_s: float = 0.05
    max_publish_attempts: int = 3
    publish_backoff_s: float = 0.002
    serve_requests: int = 120
    seed: int = 7


class _ChaosServerProxy:
    """Delegates everything to the real server; ``ingest`` may fault."""

    def __init__(self, server: MapDistributionServer, point) -> None:
        self._server = server
        self._point = point

    def __getattr__(self, name: str):
        return getattr(self._server, name)

    def ingest(self, patch, policy=None):
        if self._point.roll("publisher"):
            raise TransientPublishError(
                "injected transient publish failure")
        return self._server.ingest(patch, policy=policy)


class ChaosHarness:
    """One fault plan against one workload; :meth:`run` yields a report."""

    def __init__(self, hdmap: HDMap, plan: FaultPlan,
                 workload: Optional[ChaosWorkload] = None,
                 freshness_bound_s: float = 30.0) -> None:
        self.hdmap = hdmap
        self.plan = plan
        self.workload = workload or ChaosWorkload()
        self.freshness_bound_s = freshness_bound_s
        self.scenario: Optional[Scenario] = None
        self._final_map: Optional[HDMap] = None
        #: idempotency keys of the corrupt-geometry patches injected by
        #: the last run; the fifth invariant demands every one of them
        #: in the quarantine store.
        self.malformed_keys: List[str] = []

    # -- workload construction -----------------------------------------
    def _build_scenario(self) -> Scenario:
        w = self.workload
        rng = np.random.default_rng(w.seed)
        scenario = apply_changes(
            self.hdmap, ChangeSpec(remove_signs=w.remove_signs,
                                   add_signs=w.add_signs), rng)
        self.scenario = scenario
        return scenario

    def _build_pipeline(self, server, hooked: bool) -> IngestPipeline:
        w = self.workload
        pipe = IngestPipeline(
            server, tile_size=w.tile_size, n_workers=w.n_workers,
            n_partitions=w.n_partitions, capacity_per_partition=8192,
            lease_timeout_s=w.lease_timeout_s, max_attempts=w.max_attempts,
            backoff_base_s=w.backoff_base_s, max_batch=w.max_batch,
            supervisor_tick_s=w.supervisor_tick_s,
            stage_failure_threshold=w.stage_failure_threshold,
            breaker_cooldown_s=w.breaker_cooldown_s,
            delivery_hook=self._delivery_hook if hooked else None)
        pipe.publisher.max_publish_attempts = w.max_publish_attempts
        pipe.publisher.publish_backoff_s = w.publish_backoff_s
        return pipe

    def _source(self, scenario: Scenario) -> FleetObservationSource:
        w = self.workload
        return FleetObservationSource(
            scenario, n_vehicles=w.vehicles,
            route_length_m=w.route_length_m, step_s=w.step_s,
            routes_per_vehicle=w.routes_per_vehicle,
            duplicate_rate=0.0, seed=w.seed)

    # -- fault injectors -----------------------------------------------
    def _delivery_hook(self, batch) -> None:
        """Bus/worker faults, keyed by partition so each partition's fate
        is its own deterministic stream."""
        key = str(batch.partition)
        if self.plan.point(PIPELINE_WORKER_CRASH).roll(key):
            raise _InjectedCrash(f"injected crash on batch {batch.batch_id}")
        storm = self.plan.point(BUS_LEASE_STORM)
        if storm.roll(key):
            # Stall past the lease timeout: the supervisor redelivers the
            # batch while this worker is still processing it.
            time.sleep(storm.magnitude or
                       (self.workload.lease_timeout_s * 1.5))
        slow = self.plan.point(BUS_SLOW_CONSUMER)
        if slow.roll(key):
            time.sleep(slow.magnitude or 0.02)

    def _tap(self, obs: Observation, vehicle: str,
             pending: List[Tuple[int, Observation]],
             position: int) -> List[Observation]:
        """Sensor-boundary faults for one observation; returns what the
        uplink actually delivers at this position of the stream."""
        plan = self.plan
        if plan.point(SENSOR_DROP).roll(vehicle):
            return []
        if plan.point(SENSOR_CORRUPT).roll(vehicle):
            obs = copy.copy(obs)
            obs.sigma = float("nan")  # poison: fails ValidateStage
        skew = plan.point(SENSOR_CLOCK_SKEW)
        if skew.roll(vehicle):
            obs = copy.copy(obs)
            obs.t += skew.magnitude or 30.0
        delay = plan.point(SENSOR_DELAY)
        if delay.roll(vehicle):
            pending.append((position + int(delay.magnitude or 25), obs))
            return []
        out = [obs]
        if plan.point(SENSOR_DUPLICATE).roll(vehicle):
            out.append(copy.copy(obs))  # same (vehicle, seq) dedup key
        return out

    def _poison_burst(self, pipe: IngestPipeline, vehicle: str,
                      anchor: Tuple[float, float], seq_base: int) -> int:
        """A burst of structurally invalid observations near ``anchor``."""
        point = self.plan.point(PIPELINE_POISON)
        if not point.roll(vehicle):
            return 0
        burst = max(int(point.magnitude), 1)
        for i in range(burst):
            pipe.submit(Observation(
                kind=ObservationKind.DETECTION, position=anchor,
                sigma=-1.0,  # invalid on purpose: fails ValidateStage
                vehicle=f"chaos-poison-{vehicle}", seq=seq_base + i,
                t=0.0))
        return burst

    def _malformed_patch(self, point_name: str, n: int) -> MapPatch:
        """One deterministic corrupt-geometry patch for ``point_name``.

        Each shape violates a different constraint family — see
        docs/MAP_QUALITY.md — and every reference it carries is dangling
        on purpose, so the patch is unambiguously malformed regardless
        of what the workload has published so far.
        """
        x = 10_000.0 + 100.0 * n  # far from any generated geometry
        patch = MapPatch(source=f"chaos:{point_name}", confidence=0.9)
        if point_name == GEOMETRY_DEGENERATE_LANE:
            patch.add(Lane(
                id=ElementId("lane", 990_000 + n),
                centerline=Polyline(np.array([[x, 0.0], [x + 0.2, 0.0]])),
                left_boundary=ElementId("boundary", 990_000 + n),
                right_boundary=ElementId("boundary", 991_000 + n),
                width=0.4, speed_limit=13.9))
        elif point_name == GEOMETRY_BROKEN_BOUNDARY:
            patch.add(LaneBoundary(
                id=ElementId("boundary", 992_000 + n),
                line=Polyline(np.array([[x, 0.0], [x + 60.0, 0.0],
                                        [x + 1.0, 0.05]])),
                boundary_type="solid"))
        else:  # GEOMETRY_ORPHAN_REGULATORY
            patch.add(RegulatoryElement(
                id=ElementId("regulatory", 993_000 + n),
                rule_type=RuleType.SPEED_LIMIT, lanes=(),
                evidence=(ElementId("sign", 993_000 + n),), value=99.0))
        return patch

    def _geometry_flood(self, pipe: IngestPipeline, vehicle: str) -> int:
        """Corrupt-geometry patches pushed straight at the publisher —
        upstream of nothing but the verify gate itself, which must
        quarantine every one. Returns how many were injected."""
        injected = 0
        for point_name in (GEOMETRY_DEGENERATE_LANE,
                           GEOMETRY_BROKEN_BOUNDARY,
                           GEOMETRY_ORPHAN_REGULATORY):
            point = self.plan.point(point_name)
            if not point.roll(vehicle):
                continue
            n = len(self.malformed_keys)
            key = f"chaos:{point_name}:{n}"
            self.malformed_keys.append(key)
            pipe.publisher.publish(ConfirmedPatch(
                key=key, patch=self._malformed_patch(point_name, n)))
            injected += 1
        return injected

    def _conflict_target(self, scenario: Scenario) -> Optional[TrafficSign]:
        """A prior sign the scenario did not touch — safe for the rogue
        writer to churn without masking real injected changes."""
        changed = {c.element_id for c in scenario.true_changes}
        for sign in scenario.prior.signs():
            if sign.id not in changed:
                return sign
        return None

    def _rogue_replace(self, target: TrafficSign, source: str,
                       confidence: float) -> MapPatch:
        moved = TrafficSign(id=target.id,
                            position=np.array(target.position, dtype=float),
                            sign_type=target.sign_type)
        return MapPatch(source=source, confidence=confidence).replace(moved)

    def _conflict_flood(self, server: MapDistributionServer,
                        scenario: Scenario, vehicle: str) -> int:
        """Accepted-then-conflicting rogue write pairs; returns how many
        REJECT-policy writes were actually refused."""
        point = self.plan.point(PUBLISH_CONFLICT)
        refused = 0
        if not point.active:
            return refused
        target = self._conflict_target(scenario)
        if target is None:
            return refused
        for i in range(max(int(point.magnitude), 2)):
            if not point.roll(vehicle):
                continue
            # First write wins a version bump; the immediate second write
            # of the same element lands inside the conflict window, so a
            # REJECT-policy caller sees it refused (no version consumed).
            server.ingest(self._rogue_replace(target, "chaos-rogue", 0.95),
                          policy=ConflictPolicy.LAST_WRITER_WINS)
            result = server.ingest(
                self._rogue_replace(target, "chaos-rogue-2", 0.5),
                policy=ConflictPolicy.REJECT)
            refused += 0 if result.accepted else 1
        return refused

    # -- drive ----------------------------------------------------------
    def _submit_all(self, pipe: IngestPipeline,
                    source: FleetObservationSource,
                    server: MapDistributionServer,
                    scenario: Scenario) -> None:
        """Sequential per-vehicle submission through the sensor tap."""
        poison_seq = 0
        for idx in range(source.n_vehicles):
            vehicle = f"vehicle-{idx}"
            pending: List[Tuple[int, Observation]] = []
            anchor = (0.0, 0.0)
            for position, obs in enumerate(
                    source.observations_for_vehicle(idx)):
                if pending:
                    for due, held in list(pending):
                        if due <= position:
                            pipe.submit(held)
                            pending.remove((due, held))
                for delivered in self._tap(obs, vehicle, pending, position):
                    pipe.submit(delivered)
                anchor = obs.position
            for _, held in pending:  # out-of-order tail of the uplink
                pipe.submit(held)
            poison_seq += self._poison_burst(pipe, vehicle, anchor,
                                             poison_seq)
            self._conflict_flood(server, scenario, vehicle)
            self._geometry_flood(pipe, vehicle)

    def _serve_phase(self, server: MapDistributionServer,
                     scenario: Scenario) -> Tuple[Dict[str, object], int]:
        """Request storm against a service over the chaos-mutated map."""
        w = self.workload
        plan = self.plan
        store = TileStore.build(scenario.prior, tile_size=w.tile_size)
        tiles = store.tiles()
        service = MapService(
            server, store, n_workers=2, cache_shards=4, tiles_per_shard=8,
            policy=AdmissionPolicy(max_queue=32),
            stale_tile_versions=2)
        base_version = server.version
        regressions = 0
        max_staleness = 0
        futures = []
        hot = plan.point(SERVE_HOT_SHARD)
        storm = plan.point(SERVE_INVALIDATION_STORM)
        spike = plan.point(SERVE_SPIKE)
        target = self._conflict_target(scenario)
        priorities = (Priority.LOW, Priority.NORMAL, Priority.HIGH)
        with service:
            for i in range(w.serve_requests):
                # One decision stream per serve point (default key): the
                # request index advances the stream, so `after` offsets
                # delay the fault window into the phase as documented.
                tile = tiles[0] if hot.roll() else tiles[i % len(tiles)]
                if storm.roll():
                    service.cache.invalidate_encoded()
                if i == w.serve_requests // 2 and target is not None and \
                        (hot.active or storm.active):
                    # One live version bump mid-storm: with SWR enabled the
                    # cache may now answer within-bound stale payloads.
                    server.ingest(
                        self._rogue_replace(target, "chaos-serve", 0.9),
                        policy=ConflictPolicy.LAST_WRITER_WINS)
                futures.append(service.submit(GetTile(
                    tile, priority=priorities[i % 3], encoded=True)))
                if spike.roll():
                    flood = max(int(spike.magnitude), 8)
                    futures.extend(
                        service.submit(GetTile(tiles[j % len(tiles)],
                                               priority=Priority.LOW,
                                               encoded=True))
                        for j in range(flood))
            responses = [f.result(10.0) for f in futures]
        for resp in responses:
            if resp.ok:
                if resp.version < base_version:
                    regressions += 1
                max_staleness = max(max_staleness, resp.staleness)
        stats = service.metrics.snapshot()
        stats["admission"] = {
            "admitted": service.queue.admitted.value,
            "rejected": service.queue.rejected.value,
            "shed": service.queue.shed.value,
            "displaced": service.queue.displaced.value,
        }
        stats["responses"] = len(responses)
        stats["max_staleness_versions"] = max_staleness
        return stats, regressions

    # -- entry points ----------------------------------------------------
    def run(self, label: str = "chaos") -> ChaosReport:
        """Drive the full faulted workload and certify the invariants."""
        EVENT_LOG.clear()
        t_start = time.perf_counter()
        self.malformed_keys = []
        scenario = self._build_scenario()
        server = MapDistributionServer(scenario.prior.copy())
        base_version = server.version
        proxy = _ChaosServerProxy(server,
                                  self.plan.point(PUBLISH_TRANSIENT))
        pipe = self._build_pipeline(proxy, hooked=True)
        source = self._source(scenario)
        # Ingest-bench idiom: the bus is fully loaded before the stage
        # workers start, so batching is a pure function of the stream.
        self._submit_all(pipe, source, server, scenario)
        with _quiet_injected_crashes():
            pipe.start()
            pipe.stop(drain=True, timeout_s=60.0)

        serve_stats: Optional[Dict[str, object]] = None
        regressions = 0
        if any(self.plan.active(p) for p in
               (SERVE_HOT_SHARD, SERVE_INVALIDATION_STORM, SERVE_SPIKE)):
            serve_stats, regressions = self._serve_phase(server, scenario)

        invariants = check_invariants(
            pipe, server, base_version, EVENT_LOG.events(),
            freshness_bound_s=self.freshness_bound_s,
            crash_fired=self.plan.point(PIPELINE_WORKER_CRASH).fired,
            serve_version_regressions=regressions,
            malformed_keys=self.malformed_keys)
        self._final_map = server.snapshot()
        return ChaosReport(
            fault_class=label, plan=self.plan.describe(),
            fired=self.plan.fired_counts(), invariants=invariants,
            stats=pipe.stats(), serve_stats=serve_stats,
            elapsed_s=time.perf_counter() - t_start)

    def final_map_bytes(self) -> bytes:
        """Encoded final map of the last :meth:`run` (parity probe)."""
        if self._final_map is None:
            raise RuntimeError("run() has not completed yet")
        return encode_map(self._final_map)

    def run_plain(self) -> bytes:
        """The same workload on an unwrapped pipeline — no proxy, no
        hook, no tap. Returns the encoded final map; an inert-plan
        :meth:`run` must match it byte for byte."""
        scenario = self._build_scenario()
        server = MapDistributionServer(scenario.prior.copy())
        pipe = self._build_pipeline(server, hooked=False)
        source = self._source(scenario)
        for idx in range(source.n_vehicles):
            for obs in source.observations_for_vehicle(idx):
                pipe.submit(obs)
        pipe.start()
        pipe.stop(drain=True, timeout_s=60.0)
        return encode_map(server.snapshot())
