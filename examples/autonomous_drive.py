"""A full autonomous-driving stack on the HD map.

Localization (LiDAR landmark PF) + perception (HDNET map priors) + lane-
level planning (Frenet path sets) running together over a highway drive —
the machine-consumer loop the survey's introduction motivates.

Run:  python examples/autonomous_drive.py
"""

import numpy as np

from repro import generate_highway
from repro.geometry.transform import SE2
from repro.localization import LandmarkLocalizer, detect_hrl
from repro.perception import HdnetDetector
from repro.planning import PathSetPlanner
from repro.sensors import LidarScanner, WheelOdometry
from repro.sensors.lidar import Obstacle
from repro.world import drive_route


def main() -> None:
    rng = np.random.default_rng(21)
    hw = generate_highway(rng, length=3000.0, pole_spacing=70.0)
    lane = next(iter(hw.lanes()))
    truth = drive_route(hw, lane.id, 1500.0, rng)
    odometry = WheelOdometry().measure(truth, rng)
    scanner = LidarScanner()

    # Stack components, all sharing the one HD map.
    localizer = LandmarkLocalizer(hw, rng)
    p0 = truth.pose_at(truth.start_time)
    localizer.initialize(SE2(p0.x + 2.0, p0.y - 1.0, p0.theta))
    perception = HdnetDetector(hw, mode="map")
    planner = PathSetPlanner(lane.centerline)

    print("t(s)   loc-err(m)  objects  plan-offset(m)")
    for i, delta in enumerate(odometry[:300]):
        localizer.predict(delta.ds, delta.dtheta)
        true_pose = truth.pose_at(delta.t)

        if i % 10 == 0:
            # A slower vehicle ahead in our lane.
            s_true, _ = lane.centerline.project(
                np.array([true_pose.x, true_pose.y]))
            obstacle_s = s_true + 40.0
            obstacle = Obstacle(
                position=lane.centerline.point_at(obstacle_s),
                radius=1.0, reflectivity=0.45)
            scan = scanner.scan(hw, true_pose, rng, obstacles=[obstacle])

            # Localize against the map's reflective landmarks.
            localizer.update(detect_hrl(scan))
            estimate = localizer.estimate()

            # Perceive with map priors (mapped furniture suppressed).
            detections = perception.detect(scan, estimate)

            # Plan around whatever perception reports, in lane coordinates.
            s_est, d_est = lane.centerline.project(
                np.array([estimate.x, estimate.y]))
            obstacles_frenet = []
            for det in detections:
                s_ob, d_ob = lane.centerline.project(det.position)
                if det.score > 0.3:
                    obstacles_frenet.append((s_ob, d_ob))
            try:
                path = planner.plan(s_est, d_est, obstacles_frenet)
                offset = path.terminal_offset
            except Exception:
                offset = float("nan")

            err = localizer.estimate().distance_to(true_pose)
            print(f"{delta.t:5.1f}  {err:9.2f}  {len(detections):7d}  "
                  f"{offset:13.1f}")

    final_error = localizer.estimate().distance_to(
        truth.pose_at(odometry[299].t))
    print(f"\nfinal localization error: {final_error:.2f} m")
    print("the planner swings laterally (plan-offset) whenever perception "
          "reports the lead vehicle inside the horizon")


if __name__ == "__main__":
    main()
