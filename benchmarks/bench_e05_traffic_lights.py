"""E5 — Hirabayashi et al. [33]: traffic-light recognition with HD-map
features.

Paper: 97 % average precision using map positions + SSD + inter-frame
filter. Shape: the map ROI prior beats the no-map detector decisively;
the inter-frame filter adds on top.
"""

from conftest import once

import numpy as np

from repro.creation import TrafficLightRecognizer
from repro.eval import ResultTable
from repro.world import drive_lane_sequence, generate_grid_city


def _experiment(rng):
    city = generate_grid_city(rng, 3, 3, block_size=180.0)
    lanes = sorted([l for l in city.lanes() if l.length > 100],
                   key=lambda l: -l.length)
    results = {}
    for key, recognizer in (
        ("map+filter", TrafficLightRecognizer(city)),
        ("map", TrafficLightRecognizer(city, use_interframe_filter=False)),
        ("none", TrafficLightRecognizer(None)),
    ):
        local_rng = np.random.default_rng(7)
        events = []
        for lane in lanes[:4]:
            traj = drive_lane_sequence(city, [lane.id], rng=local_rng)
            events.extend(recognizer.run(city, traj, local_rng).events)
        # Dataset-level AP over all drives (as the paper evaluates).
        from repro.eval import average_precision

        results[key] = average_precision([e.score for e in events],
                                         [e.correct for e in events])
    return results


def test_e05_traffic_light_recognition(benchmark, rng):
    results = once(benchmark, _experiment, rng)

    table = ResultTable("E5", "map-prior traffic-light recognition [33]")
    table.add("AP with map + inter-frame", "0.97",
              f"{results['map+filter']:.3f}",
              ok=results["map+filter"] > 0.8)
    table.add("AP with map only", "(lower)", f"{results['map']:.3f}",
              ok=results["map"] <= results["map+filter"] + 0.02)
    table.add("AP without map", "(much lower)", f"{results['none']:.3f}",
              ok=results["none"] < results["map+filter"])
    table.print()
    assert table.all_ok()
