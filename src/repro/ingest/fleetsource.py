"""Synthetic fleet observation source: world -> sensors -> bus.

The producer half of the maintenance loop. Each synthetic vehicle drives
a route over the scenario's *reality* (the world as it actually is),
senses with the noise-modelled :class:`~repro.sensors.camera.Camera`, and
reports against the *prior* (the map the fleet believes): every sighted
sign becomes a DETECTION at its estimated world position, and every
prior-map sign that was in the field of view but unseen becomes a MISS —
exactly the per-traversal evidence of Pannen et al.'s FCD pipelines
[42][44]. Vehicles run in their own threads, so the bus sees genuinely
concurrent, spatially coherent uplink traffic; ``duplicate_rate``
re-sends a fraction of reports to model an at-least-once uplink and
exercise the bus's dedup window.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.elements import TrafficSign
from repro.geometry.transform import SE2
from repro.ingest.observation import Observation, ObservationKind
from repro.sensors.camera import Camera
from repro.world.scenario import Scenario
from repro.world.traffic import drive_route


@dataclass
class SourceReport:
    """What the producer fleet pushed into the bus."""

    n_vehicles: int
    produced: int = 0       # observations generated (incl. duplicates)
    published: int = 0      # accepted by the bus
    deduplicated: int = 0   # rejected as duplicates
    per_vehicle: List[int] = field(default_factory=list)


class FleetObservationSource:
    """N producer threads generating detection/miss evidence."""

    def __init__(self, scenario: Scenario, n_vehicles: int = 4,
                 route_length_m: float = 1500.0, step_s: float = 1.0,
                 camera: Optional[Camera] = None,
                 localization_sigma: float = 0.3,
                 match_radius: float = 3.0,
                 max_report_range: float = 35.0,
                 routes_per_vehicle: int = 1,
                 duplicate_rate: float = 0.0,
                 seed: int = 0) -> None:
        if n_vehicles < 1:
            raise ValueError("n_vehicles must be >= 1")
        self.scenario = scenario
        self.n_vehicles = n_vehicles
        self.route_length_m = route_length_m
        self.step_s = step_s
        self.camera = camera if camera is not None else Camera(
            detection_prob=0.9, false_positive_rate=0.02)
        self.localization_sigma = localization_sigma
        self.match_radius = match_radius
        # Long-range detections carry metre-scale range noise; real upload
        # pipelines only report high-quality (near) detections, and the
        # miss logic below must use the same horizon to stay consistent.
        self.max_report_range = max_report_range
        # Each vehicle can drive several routes from rotated start lanes;
        # with ceil(n_lanes / n_vehicles) routes the fleet starts a route
        # on every lane, which makes network coverage structural rather
        # than a roll of the routing dice.
        self.routes_per_vehicle = max(1, routes_per_vehicle)
        self.duplicate_rate = duplicate_rate
        self.seed = seed

    # ------------------------------------------------------------------
    def observations_for_vehicle(self, idx: int) -> List[Observation]:
        """Deterministically generate one vehicle's full report stream."""
        reality = self.scenario.reality
        rng = np.random.default_rng(self.seed + 977 * idx)
        lanes = sorted(reality.lanes(), key=lambda l: l.length, reverse=True)

        vehicle = f"vehicle-{idx}"
        seq = 0
        out: List[Observation] = []
        t_base = 0.0
        for route_idx in range(self.routes_per_vehicle):
            start = lanes[(idx + route_idx * self.n_vehicles) % len(lanes)]
            trajectory = drive_route(reality, start.id,
                                     self.route_length_m, rng)
            seq, t_base = self._observe_route(
                trajectory, vehicle, seq, t_base, rng, out)
        return out

    def _observe_route(self, trajectory, vehicle: str, seq: int,
                       t_base: float, rng: np.random.Generator,
                       out: List[Observation]) -> tuple:
        """Sense one driven route; returns the updated (seq, t_base)."""
        reality = self.scenario.reality
        prior = self.scenario.prior
        t = trajectory.start_time
        while t <= trajectory.end_time:
            t_obs = t_base + float(t) - trajectory.start_time
            true_pose = trajectory.pose_at(float(t))
            est_pose = SE2(
                true_pose.x + float(rng.normal(0, self.localization_sigma)),
                true_pose.y + float(rng.normal(0, self.localization_sigma)),
                true_pose.theta,
            )
            detections = [
                d for d in self.camera.observe_signs(reality, true_pose, rng,
                                                     t=float(t))
                # The sign-maintenance pipeline consumes sign reports only;
                # the camera's traffic-light returns go to a different loop.
                if d.sign_type != "traffic_light"
                and d.range <= self.max_report_range
            ]
            det_world = [est_pose.apply(d.body_frame_position())
                         for d in detections]
            for det, world in zip(detections, det_world):
                sigma = float(np.hypot(self.localization_sigma,
                                       det.range * self.camera.range_sigma_rel))
                out.append(Observation(
                    kind=ObservationKind.DETECTION,
                    position=(float(world[0]), float(world[1])),
                    sigma=max(sigma, 0.05),
                    vehicle=vehicle, seq=seq, t=t_obs,
                    sign_type=det.sign_type,
                ))
                seq += 1
            # Expected-but-unseen prior signs in the field of view.
            report_range = min(self.camera.max_range, self.max_report_range)
            expected = [
                s for s in prior.landmarks_in_radius(
                    est_pose.x, est_pose.y, report_range)
                if isinstance(s, TrafficSign)
                and self.camera.in_view(est_pose, s.position)
            ]
            for sign in expected:
                seen = any(
                    float(np.hypot(*(w - sign.position))) <= self.match_radius
                    for w in det_world)
                if not seen:
                    out.append(Observation(
                        kind=ObservationKind.MISS,
                        position=(float(sign.position[0]),
                                  float(sign.position[1])),
                        sigma=self.localization_sigma,
                        vehicle=vehicle, seq=seq, t=t_obs,
                        element_id=sign.id,
                    ))
                    seq += 1
            t += self.step_s
        duration = trajectory.end_time - trajectory.start_time
        return seq, t_base + float(duration) + self.step_s

    # ------------------------------------------------------------------
    def _produce(self, idx: int, submit: Callable[[Observation], bool],
                 report: SourceReport, lock: threading.Lock) -> None:
        rng = np.random.default_rng(self.seed + 31 * idx + 5)
        produced = published = deduped = 0
        for obs in self.observations_for_vehicle(idx):
            produced += 1
            if submit(obs):
                published += 1
            else:
                deduped += 1
            if self.duplicate_rate > 0 and \
                    rng.uniform() < self.duplicate_rate:
                # At-least-once uplink: the same report goes out twice.
                produced += 1
                if submit(dataclasses.replace(obs)):
                    published += 1
                else:
                    deduped += 1
        with lock:
            report.produced += produced
            report.published += published
            report.deduplicated += deduped
            report.per_vehicle.append(published)

    def run(self, submit: Callable[[Observation], bool]) -> SourceReport:
        """Drive all vehicles concurrently; returns the producer report."""
        report = SourceReport(n_vehicles=self.n_vehicles)
        lock = threading.Lock()
        threads = [
            threading.Thread(target=self._produce, name=f"producer-{i}",
                             args=(i, submit, report, lock), daemon=True)
            for i in range(self.n_vehicles)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return report
