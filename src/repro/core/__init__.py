"""The paper's primary subject: the layered HD-map data model.

Public surface:

- :class:`HDMap` — layered, spatially indexed map container;
- element types (:class:`Lane`, :class:`LaneBoundary`, :class:`RoadSegment`,
  signs/lights/poles/crosswalks/stop lines/markings);
- :class:`RegulatoryElement` — traffic rules (relational layer);
- change records and diffing, patches and versioning, tiling, validation.
"""

from repro.core.changes import ChangeLog, ChangeType, MapChange, diff_maps, match_changes
from repro.core.elements import (
    BoundaryType,
    Crosswalk,
    Kind,
    Lane,
    LaneBoundary,
    LaneType,
    LightState,
    MapElement,
    Node,
    PointLandmark,
    Pole,
    RoadMarking,
    RoadSegment,
    SignType,
    StopLine,
    TrafficLight,
    TrafficSign,
)
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId, IdAllocator
from repro.core.regulatory import RegulatoryElement, RuleType
from repro.core.tiles import (
    TileId,
    TileScheme,
    consistent_hash_owner,
    ownership_map,
)
from repro.core.validation import Severity, ValidationIssue, validate_map
from repro.core.versioning import (
    AddElement,
    MapPatch,
    RemoveElement,
    ReplaceElement,
    VersionedMap,
)

__all__ = [
    "BoundaryType",
    "ChangeLog",
    "ChangeType",
    "Crosswalk",
    "ElementId",
    "HDMap",
    "IdAllocator",
    "Kind",
    "Lane",
    "LaneBoundary",
    "LaneType",
    "LightState",
    "MapChange",
    "MapElement",
    "MapPatch",
    "Node",
    "PointLandmark",
    "Pole",
    "RegulatoryElement",
    "RoadMarking",
    "RoadSegment",
    "RuleType",
    "Severity",
    "SignType",
    "StopLine",
    "TileId",
    "TileScheme",
    "consistent_hash_owner",
    "ownership_map",
    "TrafficLight",
    "TrafficSign",
    "ValidationIssue",
    "VersionedMap",
    "AddElement",
    "RemoveElement",
    "ReplaceElement",
    "diff_maps",
    "match_changes",
    "validate_map",
]
