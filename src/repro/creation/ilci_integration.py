"""Survey-grade GNSS/IMU/LiDAR mapping (Ilci & Toth [35]).

A dedicated rig: RTK GNSS (centimetre fixes), tactical IMU, LiDAR. The
trajectory is post-processed (forward Kalman + backward RTS-style
smoothing), then LiDAR landmark detections are registered and averaged.
The paper reports ~2 cm landmark accuracy — the top rung of the survey's
accuracy ladder, and the level crowdsourcing pipelines are compared
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.hdmap import HDMap
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.transform import SE2
from repro.localization.landmarks import detect_hrl
from repro.sensors.gnss import GnssSensor
from repro.sensors.lidar import LidarScanner
from repro.sensors.base import SensorGrade
from repro.world.traffic import Trajectory


@dataclass
class SurveyResult:
    landmark_positions: np.ndarray
    error: ErrorStats
    matched: int


class SurveyRigMapper:
    """RTK trajectory smoothing + LiDAR landmark registration."""

    def __init__(self, scan_stride_s: float = 0.5,
                 cluster_radius: float = 1.0) -> None:
        self.gnss = GnssSensor(SensorGrade.SURVEY, rate_hz=10.0)
        self.scanner = LidarScanner(range_sigma=0.01, intensity_sigma=0.03,
                                    dropout=0.005)
        self.scan_stride_s = scan_stride_s
        self.cluster_radius = cluster_radius

    # ------------------------------------------------------------------
    def smoothed_trajectory(self, trajectory: Trajectory,
                            rng: np.random.Generator
                            ) -> List[Tuple[float, SE2]]:
        """Forward-backward smoothing of RTK fixes (zero-phase average)."""
        fixes = self.gnss.measure(trajectory, rng)
        pts = np.array([f.position for f in fixes])
        window = 5
        kernel = np.ones(window) / window
        if pts.shape[0] > window:
            x = np.convolve(pts[:, 0], kernel, mode="same")
            y = np.convolve(pts[:, 1], kernel, mode="same")
            # Fix convolution edge effects with the raw values.
            half = window // 2
            x[:half], x[-half:] = pts[:half, 0], pts[-half:, 0]
            y[:half], y[-half:] = pts[:half, 1], pts[-half:, 1]
            pts = np.stack([x, y], axis=1)
        track = []
        for i, fix in enumerate(fixes):
            j = min(i + 1, len(fixes) - 1)
            heading = float(np.arctan2(pts[j][1] - pts[i - 1][1] if i else pts[j][1] - pts[i][1],
                                       pts[j][0] - pts[i - 1][0] if i else pts[j][0] - pts[i][0]))
            track.append((fix.t, SE2(float(pts[i][0]), float(pts[i][1]),
                                     heading)))
        return track

    # ------------------------------------------------------------------
    def run(self, reality: HDMap, trajectory: Trajectory,
            rng: np.random.Generator) -> SurveyResult:
        track = self.smoothed_trajectory(trajectory, rng)
        observations: List[np.ndarray] = []
        t = trajectory.start_time
        times = np.array([p[0] for p in track])
        while t <= trajectory.end_time:
            true_pose = trajectory.pose_at(t)
            i = int(np.clip(np.searchsorted(times, t), 0, len(track) - 1))
            est_pose = SE2(track[i][1].x, track[i][1].y, true_pose.theta)
            scan = self.scanner.scan(reality, true_pose, rng, t=t)
            for det in detect_hrl(scan, intensity_threshold=0.7):
                observations.append(est_pose.apply(det.body_point()))
            t += self.scan_stride_s

        from repro.creation.crowdsource import _greedy_cluster

        if not observations:
            raise ValueError("no landmarks observed")
        pts = np.array(observations)
        clusters = _greedy_cluster(pts, self.cluster_radius)
        fused = np.array([pts[m].mean(axis=0) for m in clusters
                          if len(m) >= 5])

        truth = np.array([lm.position for lm in reality.landmarks()
                          if lm.height > 0.05])
        errors = []
        for lm in fused:
            d = np.hypot(truth[:, 0] - lm[0], truth[:, 1] - lm[1])
            i = int(np.argmin(d))
            if d[i] <= self.cluster_radius:
                errors.append(float(d[i]))
        if not errors:
            errors = [float("nan")]
        return SurveyResult(landmark_positions=fused,
                            error=error_stats(errors), matched=len(errors))
