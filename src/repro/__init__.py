"""hdmaps — a working reproduction of the HD-map ecosystem surveyed in
*On the Ecosystem of High-Definition (HD) Maps* (ICDE 2024).

The library is organized along the survey's own taxonomy (Table I):

- **Design and construction**: :mod:`repro.core` (the layered map model),
  :mod:`repro.creation` (every surveyed creation pipeline),
  :mod:`repro.update` (every maintenance/update pipeline);
- **Applications**: :mod:`repro.localization`, :mod:`repro.pose`,
  :mod:`repro.planning`, :mod:`repro.perception`, :mod:`repro.atv`;
- **Substrates**: :mod:`repro.geometry`, :mod:`repro.world` (ground-truth
  generator), :mod:`repro.sensors` (noise-modelled synthetic sensors),
  :mod:`repro.storage`, :mod:`repro.depthmap`, :mod:`repro.eval`.

Quick start::

    import numpy as np
    from repro import HDMap, generate_grid_city, LaneRouter

    rng = np.random.default_rng(0)
    city = generate_grid_city(rng)
    router = LaneRouter(city)
    lanes = list(city.lanes())
    route = router.route_astar(lanes[0].id, lanes[-1].id)
"""

from repro.core import (
    BoundaryType,
    ChangeType,
    ElementId,
    HDMap,
    Lane,
    LaneBoundary,
    LaneType,
    MapChange,
    MapPatch,
    RoadSegment,
    SignType,
    TrafficLight,
    TrafficSign,
    VersionedMap,
    diff_maps,
    validate_map,
)
from repro.geometry import SE2, SE3, Polyline
from repro.planning import LaneRouter
from repro.world import (
    ChangeSpec,
    Scenario,
    WorldBuilder,
    apply_changes,
    generate_factory_floor,
    generate_grid_city,
    generate_highway,
)

__version__ = "1.0.0"

__all__ = [
    "BoundaryType",
    "ChangeSpec",
    "ChangeType",
    "ElementId",
    "HDMap",
    "Lane",
    "LaneBoundary",
    "LaneRouter",
    "LaneType",
    "MapChange",
    "MapPatch",
    "Polyline",
    "RoadSegment",
    "SE2",
    "SE3",
    "Scenario",
    "SignType",
    "TrafficLight",
    "TrafficSign",
    "VersionedMap",
    "WorldBuilder",
    "apply_changes",
    "diff_maps",
    "generate_factory_floor",
    "generate_grid_city",
    "generate_highway",
    "validate_map",
    "__version__",
]
