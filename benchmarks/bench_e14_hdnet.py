"""E14 — HDNET [6]: map priors for object detection.

Paper: map priors consistently improve detection; the online map
prediction module recovers part of the benefit when no HD map exists.
Shape (AP over a drive with on-road obstacles + roadside clutter):
with-map > predicted-map >= no-map.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable, average_precision
from repro.geometry.transform import SE2
from repro.perception import HdnetDetector
from repro.sensors import LidarScanner
from repro.sensors.lidar import Obstacle
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=3000.0, pole_spacing=60.0,
                          sign_spacing=150.0)
    lane = next(iter(hw.lanes()))
    traj = drive_route(hw, lane.id, 2900.0, rng)
    scanner = LidarScanner(dropout=0.0)

    detectors = {
        "map": HdnetDetector(hw, mode="map"),
        "predicted": HdnetDetector(None, mode="predicted"),
        "none": HdnetDetector(None, mode="none"),
    }
    scores = {k: ([], []) for k in detectors}
    n_truth = 0
    t = traj.start_time
    frame_rng = np.random.default_rng(11)
    while t <= traj.end_time:
        pose = traj.pose_at(t)
        # One genuine vehicle ahead at a varying offset...
        ahead = pose.apply(np.array([float(frame_rng.uniform(8.0, 30.0)),
                                     float(frame_rng.uniform(-1.0, 1.0))]))
        on_road = Obstacle(position=ahead, radius=1.0, reflectivity=0.45)
        # ...plus vehicle-sized off-road clutter (parked trailers, bins):
        # not detection targets, and exactly what the geometric road prior
        # is for.
        side = 1.0 if frame_rng.uniform() < 0.5 else -1.0
        clutter_pos = pose.apply(np.array([
            float(frame_rng.uniform(8.0, 30.0)),
            side * float(frame_rng.uniform(10.0, 18.0)),
        ]))
        clutter = Obstacle(position=clutter_pos, radius=1.0,
                           reflectivity=0.45, on_road=False)
        n_truth += 1
        scan = scanner.scan(hw, pose, frame_rng,
                            obstacles=[on_road, clutter])
        for key, detector in detectors.items():
            for det in detector.detect(scan, pose):
                is_tp = float(np.hypot(*(det.position - ahead))) < 2.0
                scores[key][0].append(det.score)
                scores[key][1].append(is_tp)
        t += 2.0
    aps = {k: average_precision(s, l, n_positives=n_truth)
           for k, (s, l) in scores.items()}
    return aps


def test_e14_hdnet(benchmark, rng):
    aps = once(benchmark, _experiment, rng)

    table = ResultTable("E14", "HDNET map priors for detection [6]")
    table.add("AP with HD map", "(best)", f"{aps['map']:.3f}",
              ok=aps["map"] > aps["none"])
    table.add("AP with predicted prior", "(middle)", f"{aps['predicted']:.3f}",
              ok=aps["predicted"] >= aps["none"] - 0.02)
    table.add("AP without map", "(worst)", f"{aps['none']:.3f}", ok=None)
    table.add("map beats no-map", "consistently",
              f"+{aps['map'] - aps['none']:.3f}",
              ok=aps["map"] - aps["none"] > 0.05)
    table.print()
    assert table.all_ok()
