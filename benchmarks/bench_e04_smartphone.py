"""E4 — Szabó et al. [34]: smartphone-based HD map building.

Paper: better than 3 m accuracy from phone GNSS/IMU + lane detection.
Shape: mapped centerline beats raw phone GNSS and stays in the low metres.
"""

from conftest import once

from repro.creation import SmartphoneMapper
from repro.eval import ResultTable
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=2500.0)
    lane = next(iter(hw.lanes()))
    traj = drive_route(hw, lane.id, 2400.0, rng)
    with_cam = SmartphoneMapper(use_lane_detection=True).run(hw, traj, rng)
    without = SmartphoneMapper(use_lane_detection=False).run(hw, traj, rng)
    return with_cam, without


def test_e04_smartphone_mapping(benchmark, rng):
    with_cam, without = once(benchmark, _experiment, rng)

    table = ResultTable("E4", "smartphone HD-map building [34]")
    table.add("mapped error, camera+KF (m)", "< 3", f"{with_cam.error.median:.2f}",
              ok=with_cam.error.median < 3.0)
    table.add("raw phone GNSS (m)", "(worse)",
              f"{with_cam.raw_gnss_error.mean:.2f}",
              ok=with_cam.raw_gnss_error.mean > with_cam.error.median)
    table.add("KF-only, no camera (m)", "(between)",
              f"{without.error.median:.2f}",
              ok=without.error.median >= with_cam.error.median * 0.8)
    table.print()
    assert table.all_ok()
