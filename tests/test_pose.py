"""6-DoF pose recovery and semantic max-mixture association."""

import numpy as np
import pytest

from repro.core import HDMap
from repro.core.elements import Pole, TrafficSign, SignType
from repro.errors import LocalizationError
from repro.geometry.transform import SE2, SE3
from repro.pose import (
    MaxMixtureAssociator,
    SixDofEstimator,
    WindowedPoseEstimator,
    recover_roll_pitch,
)
from repro.pose.association import SemanticDetection
from repro.pose.pose6dof import observe_landmarks_3d


class TestSixDof:
    def _world_points(self, rng, n=6):
        pts = rng.uniform(-30, 30, size=(n, 2))
        heights = rng.uniform(2.0, 8.0, size=n)
        return np.column_stack([pts, heights])

    def test_recover_known_roll_pitch(self, rng):
        true_pose = SE3(10.0, 5.0, 0.0, roll=0.03, pitch=-0.02, yaw=0.7)
        world = self._world_points(rng)
        body = observe_landmarks_3d(true_pose, world, rng, sigma=0.0)
        roll, pitch = recover_roll_pitch(body, world,
                                         SE3(10.0, 5.0, 0.0, 0, 0, 0.7))
        assert roll == pytest.approx(0.03, abs=1e-6)
        assert pitch == pytest.approx(-0.02, abs=1e-6)

    def test_recover_with_noise(self, rng):
        true_pose = SE3(0.0, 0.0, 0.0, roll=0.05, pitch=0.04, yaw=-1.2)
        world = self._world_points(rng, n=12)
        body = observe_landmarks_3d(true_pose, world, rng, sigma=0.05)
        roll, pitch = recover_roll_pitch(body, world,
                                         SE3(0, 0, 0, 0, 0, -1.2))
        assert roll == pytest.approx(0.05, abs=0.02)
        assert pitch == pytest.approx(0.04, abs=0.02)

    def test_estimator_full_pipeline(self, rng):
        truth = SE3(3.0, 4.0, 0.5, roll=0.02, pitch=-0.03, yaw=0.4)
        world = self._world_points(rng)
        body = observe_landmarks_3d(truth, world, rng, sigma=0.01)
        est = SixDofEstimator().estimate(SE2(3.0, 4.0, 0.4), 0.5, body, world)
        assert est.translation_error_to(truth) < 0.01
        assert est.roll == pytest.approx(0.02, abs=0.01)

    def test_needs_two_landmarks(self):
        with pytest.raises(LocalizationError):
            recover_roll_pitch(np.zeros((1, 3)), np.zeros((1, 3)),
                               SE3.identity())


@pytest.fixture
def landmark_map():
    hdmap = HDMap("lm")
    hdmap.create(Pole, position=np.array([10.0, 5.0]))
    hdmap.create(Pole, position=np.array([10.0, 1.0]))  # near the sign!
    hdmap.create(TrafficSign, position=np.array([10.0, 0.0]),
                 sign_type=SignType.STOP)
    hdmap.create(Pole, position=np.array([-5.0, -8.0]))
    return hdmap


class TestMaxMixture:
    def test_semantics_resolve_ambiguity(self, landmark_map):
        pose = SE2(0.0, 0.0, 0.0)
        # A sign detection halfway between the near pole and the sign.
        det = SemanticDetection(body_point=np.array([10.0, 0.6]),
                                label="sign")
        with_sem = MaxMixtureAssociator(landmark_map, use_semantics=True)
        without = MaxMixtureAssociator(landmark_map, use_semantics=False)
        result_sem = with_sem.associate(pose, [det])
        result_no = without.associate(pose, [det])
        sign_id = next(iter(landmark_map.signs())).id
        assert result_sem.landmark_ids[0] == sign_id
        # Without semantics, the nearest neighbour is the pole at y=1.
        assert result_no.landmark_ids[0] != sign_id

    def test_null_hypothesis_for_clutter(self, landmark_map):
        pose = SE2(0.0, 0.0, 0.0)
        det = SemanticDetection(body_point=np.array([30.0, 30.0]),
                                label="sign")
        result = MaxMixtureAssociator(landmark_map).associate(pose, [det])
        assert result.landmark_ids[0] is None
        assert result.inlier_count == 0

    def test_windowed_estimator_corrects_drifted_odometry(self, landmark_map, rng):
        truth = SE2(0.0, 0.0, 0.0)
        est = WindowedPoseEstimator(landmark_map, window=4)
        est.start(SE2(0.6, -0.5, 0.02))  # drifted initial belief
        current_truth = truth
        final = None
        for step in range(6):
            odom = SE2(1.0, 0.0, 0.0)  # drive 1 m forward per frame
            current_truth = current_truth @ odom
            detections = []
            for lm in landmark_map.landmarks():
                body = current_truth.inverse().apply(lm.position)
                if np.hypot(*body) < 40.0:
                    noisy = body + rng.normal(0, 0.05, 2)
                    detections.append(SemanticDetection(noisy, lm.id.kind))
            final = est.push(odom, detections)
        assert final is not None
        assert final.distance_to(current_truth) < 0.3
