"""E2 — Zhao et al. [32]: automated LiDAR road-structure mapping.

Paper: 1.83 m average absolute pose error over road scenes from hundreds
of metres to 10 km. Shape: metre-level boundary error that grows with
scene length (dead-reckoned registration drift dominates).
"""

import numpy as np
from conftest import once

from repro.creation import LidarMappingPipeline
from repro.eval import ResultTable
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=6000.0, sign_spacing=400.0,
                          pole_spacing=400.0)
    lane = next(iter(hw.lanes()))
    pipeline = LidarMappingPipeline(scan_stride_s=2.0)
    results = {}
    for length in (300.0, 1500.0, 5500.0):
        traj = drive_route(hw, lane.id, length, rng)
        # drive_route always finishes the 6 km lane; slice by duration.
        duration = length / 28.0
        traj = _truncate(traj, duration)
        results[length] = pipeline.run(hw, traj, rng)
    return results


def _truncate(traj, duration):
    from repro.world.traffic import Trajectory

    samples = [s for s in traj.samples if s.t <= traj.start_time + duration]
    return Trajectory(samples) if len(samples) >= 2 else traj


def test_e02_lidar_mapping(benchmark, rng):
    results = once(benchmark, _experiment, rng)

    table = ResultTable("E2", "LiDAR road-structure mapping [32]")
    errors = {length: r.boundary_error.mean for length, r in results.items()}
    mid = errors[1500.0]
    table.add("error @1.5 km (m)", "~1.83 avg", f"{mid:.2f}",
              ok=0.05 < mid < 4.0)
    table.add("error @0.3 km (m)", "(smaller)", f"{errors[300.0]:.2f}",
              ok=errors[300.0] < 2.0)
    table.add("error @5.5 km (m)", "(larger)", f"{errors[5500.0]:.2f}",
              ok=errors[5500.0] < 20.0)
    drifts = [results[k].trajectory_drift for k in sorted(results)]
    table.add("drift grows with scene", "yes",
              f"{drifts[0]:.1f} -> {drifts[-1]:.1f} m",
              ok=drifts[0] < drifts[-1])
    table.add("boundaries extracted", "both sides",
              "yes" if results[1500.0].left_boundary is not None
              and results[1500.0].right_boundary is not None else "no",
              ok=results[1500.0].left_boundary is not None)
    table.print()
    assert table.all_ok()
