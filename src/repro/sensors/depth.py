"""Synthetic depth scenes for the WMoF depth-upsampling experiment [19].

The VLSI Weighted Mode Filter paper upsamples a low-resolution depth map to
Full-HD guided by a high-resolution image. We generate matched (guide,
low-res depth, true depth) triples: piecewise-constant depth planes with
guide-image edges aligned to depth discontinuities, plus noise — the
structure the filter exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class DepthFrame:
    """A depth-upsampling problem instance."""

    guide: np.ndarray  # (H, W) high-res guide image, float 0..1
    depth_low: np.ndarray  # (H//f, W//f) noisy low-res depth
    depth_true: np.ndarray  # (H, W) ground-truth depth
    factor: int  # upsampling factor


def make_depth_scene(rng: np.random.Generator, height: int = 1080,
                     width: int = 1920, factor: int = 4,
                     n_objects: int = 12, noise_sigma: float = 0.1,
                     depth_range: Tuple[float, float] = (2.0, 50.0)) -> DepthFrame:
    """A scene of fronto-parallel rectangles at random depths.

    Guide intensity correlates with depth layer (objects differ in
    brightness), so guide edges align with depth edges.
    """
    depth = np.full((height, width), depth_range[1], dtype=float)
    guide = np.full((height, width), 0.2, dtype=float)
    # Paint far-to-near so nearer objects occlude.
    depths = np.sort(rng.uniform(depth_range[0], depth_range[1], size=n_objects))[::-1]
    for d in depths:
        h = int(rng.integers(height // 8, height // 2))
        w = int(rng.integers(width // 8, width // 2))
        top = int(rng.integers(0, height - h))
        left = int(rng.integers(0, width - w))
        depth[top:top + h, left:left + w] = d
        guide[top:top + h, left:left + w] = float(rng.uniform(0.3, 1.0))

    low = depth[::factor, ::factor].copy()
    low += rng.normal(0.0, noise_sigma, size=low.shape)
    # Sprinkle outliers (flying pixels near edges, a stereo artefact).
    outliers = rng.uniform(size=low.shape) < 0.01
    low[outliers] = rng.uniform(depth_range[0], depth_range[1],
                                size=int(outliers.sum()))
    return DepthFrame(guide=guide, depth_low=low, depth_true=depth,
                      factor=factor)
