"""Path planning on lane-level HD maps.

- :mod:`repro.planning.route_graph` — instrumented Dijkstra/A* over the
  lane graph (expansion counts exposed for the search comparisons);
- :mod:`repro.planning.bhps` — bidirectional hybrid path search [62];
- :mod:`repro.planning.frenet_paths` — lane-coordinate path-set generation
  with inertia-like path selection for obstacle avoidance [52];
- :mod:`repro.planning.pcc` — predictive cruise control: slope-anticipating
  speed optimization with a longitudinal fuel model [61].
"""

from repro.planning.route_graph import LaneRouter, RouteResult, SearchStats
from repro.planning.bhps import bhps_route
from repro.planning.behavior import (
    BehaviorDecision,
    BehaviorPlanner,
    BehaviorState,
    LeadVehicle,
    simulate_approach,
)
from repro.planning.guidance import (
    GuidanceStep,
    Maneuver,
    describe_route,
    render_guidance,
)
from repro.planning.frenet_paths import (
    FrenetPath,
    PathSetPlanner,
    PlannerConfig,
)
from repro.planning.pcc import (
    FuelModel,
    PccPlanner,
    PccResult,
    constant_speed_profile,
    simulate_fuel,
)

__all__ = [
    "BehaviorDecision",
    "BehaviorPlanner",
    "BehaviorState",
    "FrenetPath",
    "GuidanceStep",
    "LeadVehicle",
    "Maneuver",
    "describe_route",
    "render_guidance",
    "simulate_approach",
    "FuelModel",
    "LaneRouter",
    "PathSetPlanner",
    "PccPlanner",
    "PccResult",
    "PlannerConfig",
    "RouteResult",
    "SearchStats",
    "bhps_route",
    "constant_speed_profile",
    "simulate_fuel",
]
