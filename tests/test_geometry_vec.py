import math

import numpy as np
import pytest

from repro.geometry.vec import (
    angle_diff,
    as_point,
    heading_of,
    heading_to_unit,
    norm,
    perp_left,
    point_in_polygon,
    polygon_area,
    rotate2d,
    segment_point_distance,
    unit,
    wrap_angle,
)


def test_norm_and_unit():
    assert norm([3.0, 4.0]) == pytest.approx(5.0)
    u = unit([3.0, 4.0])
    assert np.allclose(u, [0.6, 0.8])


def test_unit_zero_vector_raises():
    with pytest.raises(ValueError):
        unit([0.0, 0.0])


def test_as_point_shape_check():
    with pytest.raises(ValueError):
        as_point([1.0, 2.0, 3.0])


def test_perp_left_is_ccw_quarter_turn():
    assert np.allclose(perp_left([1.0, 0.0]), [0.0, 1.0])
    assert np.allclose(perp_left([0.0, 1.0]), [-1.0, 0.0])


def test_rotate2d_single_and_batch():
    p = rotate2d([1.0, 0.0], math.pi / 2)
    assert np.allclose(p, [0.0, 1.0], atol=1e-12)
    batch = rotate2d(np.array([[1.0, 0.0], [0.0, 1.0]]), math.pi)
    assert np.allclose(batch, [[-1.0, 0.0], [0.0, -1.0]], atol=1e-12)


def test_heading_roundtrip():
    for h in np.linspace(-3.0, 3.0, 13):
        assert heading_of(heading_to_unit(h)) == pytest.approx(h)


def test_wrap_angle_range():
    for a in np.linspace(-20.0, 20.0, 101):
        w = wrap_angle(float(a))
        assert -math.pi < w <= math.pi
        # Same direction after wrapping.
        assert math.cos(w - a) == pytest.approx(1.0, abs=1e-9)


def test_angle_diff_signed_shortest():
    assert angle_diff(0.1, -0.1) == pytest.approx(0.2)
    assert angle_diff(math.pi - 0.05, -math.pi + 0.05) == pytest.approx(-0.1)


def test_segment_point_distance_interior_and_clamped():
    d, t = segment_point_distance([0, 0], [10, 0], [5, 3])
    assert d == pytest.approx(3.0)
    assert t == pytest.approx(0.5)
    d, t = segment_point_distance([0, 0], [10, 0], [-4, 3])
    assert d == pytest.approx(5.0)
    assert t == 0.0


def test_segment_point_distance_degenerate_segment():
    d, t = segment_point_distance([2, 2], [2, 2], [5, 6])
    assert d == pytest.approx(5.0)
    assert t == 0.0


def test_polygon_area_signs():
    square_ccw = [[0, 0], [2, 0], [2, 2], [0, 2]]
    assert polygon_area(square_ccw) == pytest.approx(4.0)
    assert polygon_area(square_ccw[::-1]) == pytest.approx(-4.0)


def test_polygon_area_rejects_degenerate():
    with pytest.raises(ValueError):
        polygon_area([[0, 0], [1, 1]])


def test_point_in_polygon():
    square = np.array([[0, 0], [4, 0], [4, 4], [0, 4]], dtype=float)
    assert point_in_polygon([2, 2], square)
    assert not point_in_polygon([5, 2], square)
    # Boundary counts as inside.
    assert point_in_polygon([4, 2], square)
