"""repro.cluster: hashing, RPC picklability, routing, failover, chaos."""

import pickle
import threading

import numpy as np
import pytest

from repro.chaos import (
    CLUSTER_SHARD_CRASH,
    ClusterChaosHarness,
    ClusterWorkload,
    FaultPlan,
    FaultSpec,
)
from repro.cluster import ClusterMapClient, ClusterRouter
from repro.core import MapPatch, SignType, TrafficSign
from repro.core.tiles import TileId, consistent_hash_owner, ownership_map
from repro.errors import ClusterError
from repro.obs.metrics import Counter, Gauge, LatencyHistogram
from repro.serve.api import (
    ChangesSince,
    GetTile,
    IngestPatch,
    Response,
    Snapshot,
    SpatialQuery,
    Status,
)
from repro.serve.metrics import ServiceMetrics
from repro.storage.tilestore import TileStore, TileStoreStats

TILE_GRID = [TileId(x, y) for x in range(16) for y in range(16)]


def _local_router(city, **kw):
    kw.setdefault("n_shards", 2)
    kw.setdefault("tile_size", 120.0)
    kw.setdefault("transport", "local")
    return ClusterRouter(city, **kw)


def _sign_patch(city, position, confidence=0.9, source="probe"):
    eid = city.new_id("cluster-test-sign")
    patch = MapPatch(source=source, confidence=confidence)
    patch.add(TrafficSign(id=eid, position=np.asarray(position, float),
                          sign_type=SignType.DIRECTION))
    return eid, patch


class TestConsistentHash:
    def test_owner_in_range_and_deterministic(self):
        for tile in TILE_GRID:
            owner = consistent_hash_owner(tile, 5)
            assert 0 <= owner < 5
            assert owner == consistent_hash_owner(tile, 5)

    def test_all_shards_get_tiles(self):
        owners = {consistent_hash_owner(t, 4) for t in TILE_GRID}
        assert owners == {0, 1, 2, 3}

    def test_growth_moves_bounded_fraction(self):
        # Rendezvous hashing: growing N -> N+1 relocates ~1/(N+1) of the
        # keys; anything approaching a modulo re-hash (N/(N+1)) is a bug.
        for n in (2, 4, 8):
            before = {t: consistent_hash_owner(t, n) for t in TILE_GRID}
            after = {t: consistent_hash_owner(t, n + 1) for t in TILE_GRID}
            moved = [t for t in TILE_GRID if before[t] != after[t]]
            assert 0 < len(moved) / len(TILE_GRID) < 2.5 / (n + 1)
            # every relocated tile lands on the *new* shard
            assert all(after[t] == n for t in moved)

    def test_ownership_map_matches_pointwise(self):
        got = ownership_map(TILE_GRID, 3)
        assert got == {t: consistent_hash_owner(t, 3) for t in TILE_GRID}


class TestPicklability:
    """Everything that crosses the shard RPC boundary must pickle."""

    def test_requests_and_response_round_trip(self, city):
        eid, patch = _sign_patch(city, (10.0, 20.0))
        for request in (GetTile(tile=TileId(0, 0), encoded=True),
                        SpatialQuery(x=1.0, y=2.0, radius=50.0),
                        ChangesSince(since_version=3),
                        Snapshot(),
                        IngestPatch(patch=patch)):
            clone = pickle.loads(pickle.dumps(request))
            assert type(clone) is type(request)
        response = Response(status=Status.OK, payload=b"blob", version=7)
        clone = pickle.loads(pickle.dumps(response))
        assert clone.ok and clone.payload == b"blob" and clone.version == 7

    def test_tile_store_stats_round_trip(self):
        stats = TileStoreStats()
        stats.record_hit()
        stats.record_load()
        clone = pickle.loads(pickle.dumps(stats))
        assert (clone.hits, clone.loads, clone.evictions) == (1, 1, 0)
        clone.record_hit()  # the rebuilt lock must be usable
        assert clone.hits == 2

    def test_metric_primitives_round_trip(self):
        counter = Counter()
        counter.add(3)
        gauge = Gauge()
        gauge.set(11)
        hist = LatencyHistogram()
        hist.record(0.004)
        hist.record(0.250)
        c2, g2, h2 = pickle.loads(pickle.dumps((counter, gauge, hist)))
        assert c2.value == 3 and g2.value == 11
        assert h2.count == 2 and h2.snapshot() == hist.snapshot()
        merged = LatencyHistogram()
        merged.merge(h2)  # unpickled histograms feed snapshot merging
        assert merged.count == 2

    def test_service_metrics_round_trip(self):
        metrics = ServiceMetrics()
        metrics.record_freshness(0.01)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.freshness.count == 1


class TestRouting:
    def test_get_tile_byte_parity_with_single_store(self, city):
        store = TileStore.build(city, 120.0)
        with _local_router(city) as router:
            for tile in store.tiles():
                response = router.request(GetTile(tile=tile, encoded=True))
                assert response.ok, response.error
                assert response.payload == store._blobs[tile]

    def test_spatial_query_dedups_across_shard_boundaries(self, city):
        with _local_router(city, n_shards=3) as router:
            # radius spans many tiles, so border elements replicated
            # into adjacent tiles come back from multiple shards
            response = router.request(SpatialQuery(x=150.0, y=150.0,
                                                   radius=250.0))
            assert response.ok
            ids = [e.id for e in response.payload]
            assert len(ids) == len(set(ids))
            want = {e.id for e in
                    city.elements_in_radius(150.0, 150.0, 250.0)}
            assert set(ids) == want

    def test_ingest_routes_to_owner_and_client_syncs(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            response = router.request(IngestPatch(patch=patch))
            assert response.ok and response.payload.accepted
            assert client.sync() == 1
            assert eid in client.local
            home = router._element_tile[eid]
            assert router.owner_of_tile(home) == \
                router._owner_of(home, router._owner, router.n_shards)

    def test_multi_tile_patch_splits_across_shards(self, city):
        with _local_router(city, n_shards=3) as router:
            client = ClusterMapClient(router)
            patch = MapPatch(source="probe", confidence=0.9)
            eids = []
            rng = np.random.default_rng(5)
            min_x, min_y, max_x, max_y = city.bounds()
            for _ in range(6):
                eid = city.new_id("cluster-test-sign")
                patch.add(TrafficSign(
                    id=eid,
                    position=np.array([rng.uniform(min_x, max_x),
                                       rng.uniform(min_y, max_y)]),
                    sign_type=SignType.DIRECTION))
                eids.append(eid)
            response = router.request(IngestPatch(patch=patch))
            assert response.ok and response.payload.accepted
            client.sync()
            assert all(eid in client.local for eid in eids)
            owners = {router.owner_of_tile(router._element_tile[e])
                      for e in eids}
            assert len(owners) > 1, "patch should have split across shards"

    def test_cluster_version_monotone_across_requests(self, city):
        with _local_router(city) as router:
            seen = []
            for i in range(6):
                _, patch = _sign_patch(city, (10.0 + 30 * i, 20.0))
                response = router.request(IngestPatch(patch=patch))
                assert response.ok
                seen.append(response.version)
            assert seen == sorted(seen)


class TestChangesSinceMerge:
    def test_concurrent_publishes_merge_in_per_shard_log_order(self, city):
        with _local_router(city, n_shards=3) as router:
            client = ClusterMapClient(router)
            rng = np.random.default_rng(11)
            min_x, min_y, max_x, max_y = city.bounds()
            patches = []
            for _ in range(18):
                _, patch = _sign_patch(
                    city, (rng.uniform(min_x, max_x),
                           rng.uniform(min_y, max_y)))
                patches.append(patch)

            def publish(chunk):
                for patch in chunk:
                    response = router.request(IngestPatch(patch=patch))
                    assert response.ok

            threads = [threading.Thread(target=publish,
                                        args=(patches[i::3],))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            delta = router.changes_since(
                {i: 0 for i in range(router.n_shards)})
            assert len(delta) == 18
            # per-shard slices arrive in that shard's log order, and the
            # advertised vector matches each slice's capture version
            for index, shard_delta in delta.deltas.items():
                log = router.shard_changelog(index)
                versions = [v for v, _ in log]
                assert versions == sorted(versions)
                assert versions == list(range(1, len(versions) + 1))
                assert delta.versions[index] == shard_delta.version
            assert client.sync() == 18
            assert client.is_consistent()

    def test_client_skips_stale_shard_deltas(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            _, patch = _sign_patch(city, (33.0, 44.0))
            assert router.request(IngestPatch(patch=patch)).ok
            delta = router.changes_since({i: 0 for i in
                                          range(router.n_shards)})
            assert client.apply_delta(delta) == 1
            # re-delivering the same delta is a no-op: versions are stale
            assert client.apply_delta(delta) == 0
            assert client.is_consistent()


class TestFailoverAndRestart:
    def test_read_after_crash_restarts_from_journal(self, city):
        store = TileStore.build(city, 120.0)
        with _local_router(city) as router:
            tile = store.tiles()[0]
            router.kill_shard(router.owner_of_tile(tile))
            response = router.request(GetTile(tile=tile, encoded=True))
            assert response.ok
            assert response.payload == store._blobs[tile]
            assert router.restarts.value >= 1

    def test_acked_write_survives_owner_crash(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            assert router.request(IngestPatch(patch=patch)).ok
            owner = router.owner_of_tile(router._element_tile[eid])
            router.kill_shard(owner)
            # next write lands on the restarted shard with history intact
            eid2, patch2 = _sign_patch(city, (35.0, 46.0))
            response = router.request(IngestPatch(patch=patch2))
            assert response.ok and response.payload.accepted
            client.sync()
            assert eid in client.local and eid2 in client.local
            assert client.is_consistent()


class TestRebalance:
    def test_growth_moves_only_rehashed_tiles(self, city):
        with _local_router(city) as router:
            before = {t: router.owner_of_tile(t) for t in router.tiles()}
            moved = router.rebalance(3)
            after = {t: router.owner_of_tile(t) for t in router.tiles()}
            changed = [t for t in before if before[t] != after[t]]
            assert len(changed) == moved > 0
            assert all(after[t] == 2 for t in changed)

    def test_reads_and_writes_survive_growth(self, city):
        with _local_router(city) as router:
            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            assert router.request(IngestPatch(patch=patch)).ok
            router.rebalance(3)
            response = router.request(SpatialQuery(x=150.0, y=150.0,
                                                   radius=250.0))
            ids = [e.id for e in response.payload]
            assert len(ids) == len(set(ids))
            eid2, patch2 = _sign_patch(city, (200.0, 210.0))
            assert router.request(IngestPatch(patch=patch2)).ok
            client.sync()
            assert eid in client.local and eid2 in client.local
            assert client.is_consistent()

    def test_shrink_rejected(self, city):
        with _local_router(city, n_shards=2) as router:
            with pytest.raises(ClusterError, match="shrink"):
                router.rebalance(1)


class TestClusterChaosHarness:
    WORKLOAD = ClusterWorkload(n_shards=2, replicas=0, transport="local",
                               tile_size=120.0, ops=24, reads_per_op=1,
                               sync_every=6, seed=7)

    def test_inert_run_certifies_and_matches_single_node(self, city):
        harness = ClusterChaosHarness(city, FaultPlan.none(7),
                                      workload=self.WORKLOAD)
        report = harness.run("shard-inert")
        assert report.certify(), report.violations()
        assert harness.final_map_bytes() == harness.run_plain()

    def test_crash_plan_certifies(self, city):
        plan = FaultPlan([FaultSpec(CLUSTER_SHARD_CRASH, probability=1.0,
                                    after=5, max_count=2)], seed=7)
        harness = ClusterChaosHarness(city, plan, workload=self.WORKLOAD)
        report = harness.run("shard")
        assert report.fired[CLUSTER_SHARD_CRASH] == 2
        assert report.certify(), report.violations()
        assert report.stats["restarts"] >= 1


class TestProcessTransport:
    def test_end_to_end_over_sockets(self, city):
        store = TileStore.build(city, 120.0)
        router = ClusterRouter(city, n_shards=2, tile_size=120.0,
                               replicas=1, transport="process")
        try:
            tile = store.tiles()[0]
            response = router.request(GetTile(tile=tile, encoded=True))
            assert response.ok and response.payload == store._blobs[tile]

            # kill the owner: the read must fail over to the replica
            # (not pay a journal-replay restart on the read path)
            router.kill_shard(router.owner_of_tile(tile))
            response = router.request(GetTile(tile=tile, encoded=True))
            assert response.ok and response.payload == store._blobs[tile]
            assert router.failovers.value >= 1
            assert router.restarts.value == 0

            client = ClusterMapClient(router)
            eid, patch = _sign_patch(city, (33.0, 44.0))
            response = router.request(IngestPatch(patch=patch))
            assert response.ok and response.payload.accepted
            client.sync()
            assert eid in client.local and client.is_consistent()

            per_shard = router.collect_shard_metrics()
            assert set(per_shard) == {0, 1}
        finally:
            router.close()
