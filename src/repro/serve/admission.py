"""Admission control: bounded queueing, backpressure, and load shedding.

The serving layer refuses to build an unbounded backlog. Admission is a
bounded FIFO: when it is full, ``offer`` fails immediately and the caller
gets a REJECTED response (backpressure — the client should slow down, not
the server fall behind). Once admitted, a request can still be *shed* at
dispatch time: if it has waited longer than ``max_age_s`` and its priority
is below ``shed_below``, answering it would waste a worker on data the
vehicle has already driven past, so the worker drops it and reports SHED.

Shedding is *priority-aware at the door* too: when the queue is full and
``displace`` is enabled (the default), an arriving request of strictly
higher priority evicts the oldest queued entry of the lowest priority
class below it instead of being rejected. A request-spike flood of LOW
prefetches can therefore never starve HIGH safety-relevant ingests and
syncs — the spike displaces itself, and every displacement is counted
(``displaced``) and reported through the shed callback, never silent.

The clock is injectable so shedding is deterministically testable.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from repro.serve.api import Priority
from repro.serve.metrics import Counter


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits enforced by the admission controller."""

    max_queue: int = 256       # bounded backlog; offers beyond this fail
    max_age_s: float = 0.5     # queueing age beyond which low-priority work
    shed_below: Priority = Priority.NORMAL  # ... below this class is shed
    displace: bool = True      # full queue: higher priority evicts lower

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")


class _Queued:
    __slots__ = ("entry", "priority", "enqueued_at")

    def __init__(self, entry: Any, priority: Priority,
                 enqueued_at: float) -> None:
        self.entry = entry
        self.priority = priority
        self.enqueued_at = enqueued_at


class AdmissionController:
    """A closeable bounded FIFO with dispatch-time load shedding."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None,
                 on_shed: Optional[Callable[[Any], None]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or AdmissionPolicy()
        self._on_shed = on_shed
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: Deque[_Queued] = deque()
        self._closed = False
        self.admitted = Counter()
        self.rejected = Counter()
        self.shed = Counter()
        self.displaced = Counter()

    # ------------------------------------------------------------------
    def offer(self, entry: Any,
              priority: Priority = Priority.NORMAL) -> bool:
        """Admit ``entry`` unless the queue is full or closed.

        On a full queue with ``policy.displace`` set, a strictly
        higher-priority offer evicts the oldest queued entry of the
        lowest priority class below it (reported via the shed callback)
        and is admitted in its place.
        """
        victim: Optional[_Queued] = None
        with self._cond:
            if self._closed:
                self.rejected.add()
                return False
            if len(self._queue) >= self.policy.max_queue:
                if self.policy.displace:
                    victim = self._displaceable(priority)
                if victim is None:
                    self.rejected.add()
                    return False
                self._queue.remove(victim)
                self.displaced.add()
            self._queue.append(_Queued(entry, priority, self._clock()))
            self.admitted.add()
            self._cond.notify()
        if victim is not None and self._on_shed is not None:
            self._on_shed(victim.entry)
        return True

    def _displaceable(self, priority: Priority) -> Optional[_Queued]:
        """Oldest queued entry of the lowest class strictly below
        ``priority`` (None if everything queued is >= ``priority``)."""
        victim: Optional[_Queued] = None
        for item in self._queue:  # deque order == age order (FIFO)
            if item.priority < priority and \
                    (victim is None or item.priority < victim.priority):
                victim = item
        return victim

    def _sheddable(self, item: _Queued) -> bool:
        return (item.priority < self.policy.shed_below
                and self._clock() - item.enqueued_at > self.policy.max_age_s)

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next live entry, shedding stale low-priority ones on the way.

        Returns None once the controller is closed and drained, or when
        ``timeout`` elapses with nothing admitted.
        """
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    if deadline is None:
                        self._cond.wait()
                    else:
                        remaining = deadline - self._clock()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if not self._queue:
                                return None
                if not self._queue:
                    return None  # closed and drained
                item = self._queue.popleft()
            if self._sheddable(item):
                self.shed.add()
                if self._on_shed is not None:
                    self._on_shed(item.entry)
                continue
            return item.entry

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def close(self) -> None:
        """Stop admitting; wake all waiting takers to drain and exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
