"""Evaluation: metrics, result tables, and the experiment harness."""

from repro.eval.metrics import (
    average_precision,
    error_histogram,
    error_stats,
    precision_recall,
    sensitivity_specificity,
)
from repro.eval.harness import ExperimentResult, ResultTable

__all__ = [
    "ExperimentResult",
    "ResultTable",
    "average_precision",
    "error_histogram",
    "error_stats",
    "precision_recall",
    "sensitivity_specificity",
]
