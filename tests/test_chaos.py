"""Fault plans, the chaos harness, and invariant certification."""

import pytest

from repro.chaos import (
    ALL_FAULT_POINTS,
    FAULT_CLASSES,
    PUBLISH_TRANSIENT,
    SENSOR_DROP,
    SENSOR_DUPLICATE,
    ChaosHarness,
    ChaosWorkload,
    FaultPlan,
    FaultSpec,
    curated_matrix,
)


class TestFaultSpec:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("sensor.meltdown")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(SENSOR_DROP, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(SENSOR_DROP, probability=-0.1)

    def test_negative_after_and_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(SENSOR_DROP, after=-1)
        with pytest.raises(ValueError):
            FaultSpec(SENSOR_DROP, max_count=-1)

    def test_duplicate_spec_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultSpec(SENSOR_DROP), FaultSpec(SENSOR_DROP)])


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        def rolls(plan):
            point = plan.point(SENSOR_DROP)
            return [point.roll(key) for key in
                    ["a"] * 20 + ["b"] * 20 + ["a"] * 20]

        spec = FaultSpec(SENSOR_DROP, probability=0.5)
        first = rolls(FaultPlan([spec], seed=7))
        second = rolls(FaultPlan([spec], seed=7))
        assert first == second
        other = rolls(FaultPlan([spec], seed=8))
        assert first != other

    def test_streams_are_independent_per_key(self):
        spec = FaultSpec(SENSOR_DROP, probability=0.5)
        solo = FaultPlan([spec], seed=7).point(SENSOR_DROP)
        solo_b = [solo.roll("b") for _ in range(30)]
        mixed = FaultPlan([spec], seed=7).point(SENSOR_DROP)
        mixed_b = []
        for i in range(30):
            mixed.roll("a")  # interleaved traffic on another key
            mixed_b.append(mixed.roll("b"))
        assert solo_b == mixed_b

    def test_after_skips_first_opportunities(self):
        plan = FaultPlan([FaultSpec(SENSOR_DROP, probability=1.0, after=3)],
                         seed=7)
        point = plan.point(SENSOR_DROP)
        assert [point.roll() for _ in range(5)] == \
            [False, False, False, True, True]

    def test_max_count_caps_total_fires(self):
        plan = FaultPlan([FaultSpec(SENSOR_DROP, probability=1.0,
                                    max_count=2)], seed=7)
        point = plan.point(SENSOR_DROP)
        fires = [point.roll(str(i)) for i in range(10)]
        assert sum(fires) == 2 and point.fired == 2
        assert plan.fired_counts() == {SENSOR_DROP: 2}

    def test_inert_plan(self):
        plan = FaultPlan.none(seed=7)
        assert plan.is_inert
        assert not any(plan.point(name).roll() for name in ALL_FAULT_POINTS)
        assert plan.fired_counts() == {}
        assert "no faults" in plan.describe()

    def test_unknown_point_lookup(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan.none().point("nope")

    def test_fault_classes_partition_the_catalog(self):
        from_classes = [p for points in FAULT_CLASSES.values()
                        for p in points]
        assert sorted(from_classes) == sorted(ALL_FAULT_POINTS)
        assert len(from_classes) == len(set(from_classes))

    def test_curated_matrix_covers_every_class_and_point(self):
        matrix = dict(curated_matrix(7))
        assert set(matrix) == set(FAULT_CLASSES)
        for fault_class, plan in matrix.items():
            assert set(plan.specs) == set(FAULT_CLASSES[fault_class])


# Small enough to drain in well under a second per run.
_WORKLOAD = ChaosWorkload(vehicles=2, routes_per_vehicle=1,
                          route_length_m=450.0, serve_requests=30, seed=7)


class TestChaosHarness:
    def test_inert_run_certifies_and_matches_plain_pipeline(self, city):
        harness = ChaosHarness(city, FaultPlan.none(7), workload=_WORKLOAD)
        report = harness.run("inert")
        assert report.certify(), report.format()
        assert sum(report.fired.values()) == 0
        chaos_bytes = harness.final_map_bytes()
        assert chaos_bytes == harness.run_plain()

    def test_fault_run_fires_and_still_certifies(self, city):
        plan = FaultPlan([
            FaultSpec(SENSOR_DROP, probability=0.1),
            FaultSpec(SENSOR_DUPLICATE, probability=0.1),
            FaultSpec(PUBLISH_TRANSIENT, probability=0.5, max_count=4),
        ], seed=7)
        harness = ChaosHarness(city, plan, workload=_WORKLOAD)
        report = harness.run("mixed")
        assert sum(report.fired.values()) > 0
        assert report.certify(), report.format()
        assert len(report.invariants) == 5
        assert all(r.ok for r in report.invariants)

    def test_report_format_names_the_invariants(self, city):
        harness = ChaosHarness(city, FaultPlan.none(7), workload=_WORKLOAD)
        text = harness.run("fmt").format()
        for fragment in ("no_lost_acked_observations",
                         "no_duplicate_published_patches",
                         "version_monotonicity", "freshness_lag_bounded"):
            assert fragment in text
