"""IMU model: yaw-rate and longitudinal acceleration with bias drift."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geometry.vec import wrap_angle
from repro.sensors.base import IMU_NOISE_BY_GRADE, ImuNoise, SensorGrade
from repro.world.traffic import Trajectory


@dataclass(frozen=True)
class ImuReading:
    t: float
    yaw_rate: float  # rad/s
    accel: float  # longitudinal m/s^2


class ImuSensor:
    """Samples yaw-rate/acceleration along a trajectory with bias drift."""

    def __init__(self, grade: SensorGrade = SensorGrade.AUTOMOTIVE,
                 rate_hz: float = 20.0,
                 noise: Optional[ImuNoise] = None) -> None:
        self.grade = grade
        self.rate_hz = rate_hz
        self.noise = noise if noise is not None else IMU_NOISE_BY_GRADE[grade]

    def measure(self, trajectory: Trajectory,
                rng: np.random.Generator) -> List[ImuReading]:
        dt = 1.0 / self.rate_hz
        noise = self.noise
        gyro_bias = 0.0
        readings: List[ImuReading] = []
        t = trajectory.start_time
        prev_pose = trajectory.pose_at(t)
        prev_speed = trajectory.samples[0].speed
        while t + dt <= trajectory.end_time:
            pose = trajectory.pose_at(t + dt)
            true_yaw_rate = wrap_angle(pose.theta - prev_pose.theta) / dt
            speed_now = _speed_at(trajectory, t + dt)
            true_accel = (speed_now - prev_speed) / dt
            gyro_bias += rng.normal(0.0, noise.gyro_bias_sigma) * np.sqrt(dt)
            readings.append(ImuReading(
                t=float(t + dt),
                yaw_rate=true_yaw_rate + gyro_bias + float(rng.normal(0, noise.gyro_sigma)),
                accel=true_accel + float(rng.normal(0, noise.accel_sigma)),
            ))
            prev_pose = pose
            prev_speed = speed_now
            t += dt
        return readings


def _speed_at(trajectory: Trajectory, t: float) -> float:
    times = np.array([s.t for s in trajectory.samples])
    speeds = np.array([s.speed for s in trajectory.samples])
    return float(np.interp(t, times, speeds))


def dead_reckon(readings: List[ImuReading], start_pose, start_speed: float):
    """Integrate IMU readings into a pose track (for drift illustration).

    Returns a list of ``(t, SE2)`` — the classic error-growth curve that
    motivates map-based localization.
    """
    from repro.geometry.transform import SE2

    poses = [(readings[0].t, start_pose)]
    x, y, theta = start_pose.x, start_pose.y, start_pose.theta
    speed = start_speed
    for prev, cur in zip(readings, readings[1:]):
        dt = cur.t - prev.t
        speed = max(0.0, speed + cur.accel * dt)
        theta = wrap_angle(theta + cur.yaw_rate * dt)
        x += speed * dt * np.cos(theta)
        y += speed * dt * np.sin(theta)
        poses.append((cur.t, SE2(x, y, theta)))
    return poses
