"""Cluster telemetry plane: propagation, harvesting, merged trees."""

import time

import pytest

from repro.chaos import ClusterChaosHarness, ClusterWorkload, FaultPlan
from repro.chaos.faults import CLUSTER_SLOW_SHARD, FaultSpec
from repro.cluster import ClusterRouter, estimate_clock_offset
from repro.cluster.shard import ShardBackend, ShardConfig
from repro.core.hdmap import HDMap
from repro.obs import (
    EVENT_LOG,
    TRACER,
    SpanRecorder,
    TraceContext,
    configure_tracing,
    verify_spans,
)
from repro.serve.api import GetTile
from repro.storage.binary import encode_map


@pytest.fixture
def traced():
    """Full sampling + clean rings for the duration of one test."""
    configure_tracing(enabled=True, sample_rate=1.0, reset=True)
    EVENT_LOG.clear()
    yield
    configure_tracing(enabled=False, reset=True)
    EVENT_LOG.clear()


class TestCrossProcessTrace:
    def test_process_round_trip_merges_to_one_clean_tree(
            self, city, traced):
        """One sampled GetTile through forked shards reconstructs as a
        single verify-clean tree: client root -> router RPC span ->
        shard-side continuation -> worker serve span."""
        router = ClusterRouter(city, n_shards=2, tile_size=120.0,
                               transport="process", replicas=1)
        try:
            tile = sorted(router.tiles())[0]
            response = router.request(GetTile(tile=tile))
            assert response.ok
            totals = router.harvest_telemetry()
            assert totals["spans"] >= 2  # shard.serve + serve.request.*
        finally:
            router.close()
        spans = [s.as_dict() for s in TRACER.recorder.spans()]
        assert verify_spans(spans) == []
        assert len({s["trace_id"] for s in spans}) == 1
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["cluster.request.GetTile"]

        by_id = {s["span_id"]: s for s in spans}
        serve_req = [s for s in spans
                     if s["name"] == "serve.request.GetTile"]
        assert len(serve_req) == 1
        shard_span = by_id[serve_req[0]["parent_id"]]
        assert shard_span["name"] == "shard.serve"
        rpc_span = by_id[shard_span["parent_id"]]
        assert rpc_span["name"] == "cluster.rpc.serve"
        assert rpc_span["parent_id"] == roots[0]["span_id"]

        # Shard-side ids are namespaced per process; merged attrs say
        # which process served (replica reads are on by default here).
        assert shard_span["span_id"].startswith("s")
        assert shard_span["attrs"]["shard"] in (0, 1)
        assert str(shard_span["attrs"]["role"]) in ("primary", "replica0")
        assert rpc_span["attrs"]["replica"] in ("primary", 0)

    def test_unsampled_requests_ship_no_trace_context(self, city):
        """Tracing disabled: requests cross the wire as before and the
        harvest finds nothing shard-side."""
        configure_tracing(enabled=False, reset=True)
        router = ClusterRouter(city, n_shards=2, tile_size=120.0,
                               transport="process")
        try:
            for tile in sorted(router.tiles())[:3]:
                assert router.request(GetTile(tile=tile)).ok
            totals = router.harvest_telemetry()
            assert totals["spans"] == 0
        finally:
            router.close()
        assert TRACER.recorder.spans() == []


class TestClockOffset:
    @pytest.mark.parametrize("skew", [-0.5, -0.01, 0.0, 0.02, 0.75])
    def test_recovers_constant_skew(self, skew):
        def call(op):
            assert op == "clock"
            return time.monotonic() + skew

        offset = estimate_clock_offset(call)
        assert abs(offset - skew) < 0.05

    def test_prefers_smallest_rtt_sample(self):
        # One ping answers after a long stall (bad bracket), the rest
        # instantly; the estimator must keep the tight bracket's answer.
        skew = 0.3
        calls = {"n": 0}

        def call(op):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.05)
            return time.monotonic() + skew

        offset = estimate_clock_offset(call, pings=4)
        assert abs(offset - skew) < 0.05


class TestTelemetryHarvest:
    def _backend(self):
        config = ShardConfig(index=3, tile_size=100.0,
                             base_map_bytes=encode_map(HDMap("tiny")))
        return ShardBackend(config)

    def test_drop_accounting_over_full_ring(self, traced):
        """A wrapped shard ring reports the drop delta exactly once."""
        backend = self._backend()
        keep = TRACER.recorder
        TRACER.recorder = SpanRecorder(capacity=4)
        try:
            ctx = TraceContext(trace_id="t-drop", span_id="root")
            for i in range(10):
                with TRACER.continue_from(ctx, "shard.serve", op=i):
                    pass
            first = backend.dispatch("telemetry", {"max_spans": 100})
            assert first["dropped"] == 6
            assert len(first["spans"]) == 4
            # Oldest-first and already finished.
            assert [s["attrs"]["op"] for s in first["spans"]] == [6, 7, 8, 9]
            second = backend.dispatch("telemetry", {})
            assert second["dropped"] == 0
            assert second["spans"] == []
        finally:
            TRACER.recorder = keep

    def test_bounded_drain_leaves_remainder(self, traced):
        backend = self._backend()
        ctx = TraceContext(trace_id="t-batch", span_id="root")
        for i in range(5):
            with TRACER.continue_from(ctx, "shard.serve", op=i):
                pass
        first = backend.dispatch("telemetry", {"max_spans": 2})
        second = backend.dispatch("telemetry", {"max_spans": 10})
        assert [s["attrs"]["op"] for s in first["spans"]] == [0, 1]
        assert [s["attrs"]["op"] for s in second["spans"]] == [2, 3, 4]

    def test_merge_rebases_tags_and_counts(self, city, traced):
        router = ClusterRouter(city, n_shards=1, tile_size=120.0,
                               transport="local")
        try:
            batch = {
                "spans": [{"name": "shard.serve", "trace_id": "t-m",
                           "span_id": "s9-1", "parent_id": None,
                           "start_s": 100.0, "end_s": 100.5,
                           "duration_s": 0.5, "attrs": {"op": "serve"}}],
                "events": [{"ts": 1.0, "level": "warning", "logger": "x",
                            "event": "fault_injected",
                            "trace_id": "t-m"}],
                "dropped": 3,
            }
            totals = router.telemetry.merge(0, "replica0", batch,
                                            offset_s=5.0)
            assert totals == {"spans": 1, "events": 1, "dropped": 3}
            assert router.telemetry_spans.value == 1
            assert router.telemetry_dropped.value == 3
            merged = [s.as_dict() for s in TRACER.recorder.spans()
                      if s.trace_id == "t-m"]
            assert len(merged) == 1
            assert merged[0]["start_s"] == pytest.approx(95.0)
            assert merged[0]["end_s"] == pytest.approx(95.5)
            assert merged[0]["attrs"]["shard"] == 0
            assert merged[0]["attrs"]["role"] == "replica0"
            tagged = EVENT_LOG.events(event="fault_injected")
            assert tagged and tagged[-1]["shard"] == 0
        finally:
            router.close()


class TestChaosTraceTagging:
    def test_slow_fault_poisons_traces(self, city):
        plan = FaultPlan([FaultSpec(CLUSTER_SLOW_SHARD, probability=1.0,
                                    after=2, max_count=1, magnitude=0.05)],
                         seed=11)
        workload = ClusterWorkload(ops=6, reads_per_op=1,
                                   transport="local", replicas=0,
                                   trace_sample_rate=1.0,
                                   call_timeout_s=5.0)
        harness = ClusterChaosHarness(city, plan, workload)
        report = harness.run()
        assert report.certify(), report.format()
        assert report.stats["poisoned_traces"] >= 1
        assert "poisoned" in report.format()
        assert TRACER.enabled is False  # harness restored the tracer
