"""Compact binary vector codec.

Li et al. [60] cut HD-map storage from ~10 MB/mile to ~100 KB/mile by
discarding the laser point cloud and keeping only delta-coded vector data
(lanes, links, limits, signs). This codec implements that strategy:

- coordinates quantized to 1 cm and delta-coded as zigzag varints,
- element records packed with one-byte type tags,
- zlib entropy coding over the whole payload.

Round-trips everything :func:`repro.storage.geojson.map_to_dict` handles,
at centimetre precision.
"""

from __future__ import annotations

import struct
import zlib
from io import BytesIO
from typing import BinaryIO, Iterable, List, Optional

import numpy as np

from repro.core.elements import (
    BoundaryType,
    Crosswalk,
    Lane,
    LaneBoundary,
    LaneType,
    MapElement,
    Node,
    Pole,
    RoadMarking,
    RoadSegment,
    SignType,
    StopLine,
    TrafficLight,
    TrafficSign,
)
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.regulatory import RegulatoryElement, RuleType
from repro.errors import StorageError
from repro.geometry.polyline import Polyline

MAGIC = b"HDMV"
VERSION = 1
QUANTUM = 0.01  # 1 cm

_TYPE_TAGS = {
    Node: 1,
    LaneBoundary: 2,
    Lane: 3,
    RoadSegment: 4,
    TrafficSign: 5,
    TrafficLight: 6,
    Pole: 7,
    RoadMarking: 8,
    Crosswalk: 9,
    StopLine: 10,
    RegulatoryElement: 11,
}
_TAG_TYPES = {v: k for k, v in _TYPE_TAGS.items()}


# ----------------------------------------------------------------------
# Varint primitives
# ----------------------------------------------------------------------
def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63)


def _unzigzag(n: int) -> int:
    return (n >> 1) ^ -(n & 1)


def _write_varint(buf: BytesIO, n: int) -> None:
    if n < 0:
        raise StorageError("varint must be non-negative")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            buf.write(bytes([byte | 0x80]))
        else:
            buf.write(bytes([byte]))
            return


def _read_varint(buf: BytesIO) -> int:
    shift = 0
    out = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise StorageError("truncated varint")
        byte = raw[0]
        out |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return out
        shift += 7


def _write_svarint(buf: BytesIO, n: int) -> None:
    _write_varint(buf, _zigzag(n))


def _read_svarint(buf: BytesIO) -> int:
    return _unzigzag(_read_varint(buf))


# ----------------------------------------------------------------------
# Field helpers
# ----------------------------------------------------------------------
def _write_polyline(buf: BytesIO, line: Polyline) -> None:
    q = np.round(line.points / QUANTUM).astype(np.int64)
    _write_varint(buf, q.shape[0])
    prev = np.zeros(2, dtype=np.int64)
    for row in q:
        _write_svarint(buf, int(row[0] - prev[0]))
        _write_svarint(buf, int(row[1] - prev[1]))
        prev = row


def _read_polyline(buf: BytesIO) -> Polyline:
    n = _read_varint(buf)
    pts = np.zeros((n, 2), dtype=np.int64)
    prev = np.zeros(2, dtype=np.int64)
    for i in range(n):
        prev = prev + np.array([_read_svarint(buf), _read_svarint(buf)])
        pts[i] = prev
    return Polyline(pts.astype(float) * QUANTUM)


def _write_point(buf: BytesIO, position: np.ndarray) -> None:
    _write_svarint(buf, int(round(float(position[0]) / QUANTUM)))
    _write_svarint(buf, int(round(float(position[1]) / QUANTUM)))


def _read_point(buf: BytesIO) -> np.ndarray:
    return np.array([_read_svarint(buf), _read_svarint(buf)], dtype=float) * QUANTUM


def _write_id(buf: BytesIO, eid: Optional[ElementId],
              kinds: List[str]) -> None:
    if eid is None:
        _write_varint(buf, 0)
        return
    _write_varint(buf, kinds.index(eid.kind) + 1)
    _write_varint(buf, eid.num)


def _read_id(buf: BytesIO, kinds: List[str]) -> Optional[ElementId]:
    tag = _read_varint(buf)
    if tag == 0:
        return None
    return ElementId(kinds[tag - 1], _read_varint(buf))


def _write_id_list(buf: BytesIO, ids: Iterable[ElementId],
                   kinds: List[str]) -> None:
    ids = list(ids)
    _write_varint(buf, len(ids))
    for eid in ids:
        _write_id(buf, eid, kinds)


def _read_id_list(buf: BytesIO, kinds: List[str]) -> List[ElementId]:
    n = _read_varint(buf)
    out = []
    for _ in range(n):
        eid = _read_id(buf, kinds)
        if eid is not None:
            out.append(eid)
    return out


def _write_f32(buf: BytesIO, value: float) -> None:
    buf.write(struct.pack("<f", value))


def _read_f32(buf: BytesIO) -> float:
    return float(struct.unpack("<f", buf.read(4))[0])


# ----------------------------------------------------------------------
# Element records
# ----------------------------------------------------------------------
_BOUNDARY_TYPES = list(BoundaryType)
_LANE_TYPES = list(LaneType)
_SIGN_TYPES = list(SignType)
_RULE_TYPES = list(RuleType)


def _encode_element(buf: BytesIO, element: MapElement,
                    kinds: List[str]) -> None:
    tag = _TYPE_TAGS.get(type(element))
    if tag is None:
        raise StorageError(f"cannot encode {type(element).__name__}")
    buf.write(bytes([tag]))
    _write_id(buf, element.id, kinds)
    if isinstance(element, Node):
        _write_point(buf, element.position)
    elif isinstance(element, LaneBoundary):
        buf.write(bytes([_BOUNDARY_TYPES.index(element.boundary_type)]))
        _write_f32(buf, element.reflectivity)
        _write_polyline(buf, element.line)
    elif isinstance(element, Lane):
        buf.write(bytes([_LANE_TYPES.index(element.lane_type)]))
        _write_f32(buf, element.width)
        _write_f32(buf, element.speed_limit)
        _write_id(buf, element.left_boundary, kinds)
        _write_id(buf, element.right_boundary, kinds)
        _write_id(buf, element.segment, kinds)
        _write_polyline(buf, element.centerline)
    elif isinstance(element, RoadSegment):
        _write_id(buf, element.start_node, kinds)
        _write_id(buf, element.end_node, kinds)
        _write_id_list(buf, element.forward_lanes, kinds)
        _write_id_list(buf, element.backward_lanes, kinds)
        _write_polyline(buf, element.reference_line)
    elif isinstance(element, TrafficSign):
        buf.write(bytes([_SIGN_TYPES.index(element.sign_type)]))
        has_value = element.value is not None
        buf.write(bytes([1 if has_value else 0]))
        if has_value:
            _write_f32(buf, float(element.value))
        _write_f32(buf, element.facing)
        _write_f32(buf, element.height)
        _write_f32(buf, element.reflectivity)
        _write_point(buf, element.position)
    elif isinstance(element, TrafficLight):
        _write_f32(buf, element.facing)
        for part in element.cycle:
            _write_f32(buf, part)
        _write_f32(buf, element.phase_offset)
        _write_f32(buf, element.height)
        _write_point(buf, element.position)
    elif isinstance(element, (Pole, RoadMarking)):
        _write_f32(buf, element.height)
        _write_f32(buf, element.reflectivity)
        _write_point(buf, element.position)
        if isinstance(element, RoadMarking):
            raw = element.marking_type.encode()
            _write_varint(buf, len(raw))
            buf.write(raw)
    elif isinstance(element, Crosswalk):
        _write_polyline(buf, Polyline(element.polygon))
    elif isinstance(element, StopLine):
        _write_polyline(buf, element.line)
    elif isinstance(element, RegulatoryElement):
        buf.write(bytes([_RULE_TYPES.index(element.rule_type)]))
        has_value = element.value is not None
        buf.write(bytes([1 if has_value else 0]))
        if has_value:
            _write_f32(buf, float(element.value))
        _write_id_list(buf, element.lanes, kinds)
        _write_id_list(buf, element.evidence, kinds)
        _write_id_list(buf, element.yields_to, kinds)


def _decode_element(buf: BytesIO, kinds: List[str]) -> MapElement:
    tag = buf.read(1)[0]
    element_type = _TAG_TYPES.get(tag)
    if element_type is None:
        raise StorageError(f"unknown element tag {tag}")
    eid = _read_id(buf, kinds)
    if eid is None:
        raise StorageError("element record with null id")
    if element_type is Node:
        return Node(id=eid, position=_read_point(buf))
    if element_type is LaneBoundary:
        btype = _BOUNDARY_TYPES[buf.read(1)[0]]
        refl = _read_f32(buf)
        return LaneBoundary(id=eid, line=_read_polyline(buf),
                            boundary_type=btype, reflectivity=refl)
    if element_type is Lane:
        ltype = _LANE_TYPES[buf.read(1)[0]]
        width = _read_f32(buf)
        limit = _read_f32(buf)
        left = _read_id(buf, kinds)
        right = _read_id(buf, kinds)
        segment = _read_id(buf, kinds)
        return Lane(id=eid, centerline=_read_polyline(buf),
                    left_boundary=left, right_boundary=right, width=width,
                    lane_type=ltype, speed_limit=limit, segment=segment)
    if element_type is RoadSegment:
        start = _read_id(buf, kinds)
        end = _read_id(buf, kinds)
        fwd = _read_id_list(buf, kinds)
        bwd = _read_id_list(buf, kinds)
        return RoadSegment(id=eid, start_node=start, end_node=end,
                           reference_line=_read_polyline(buf),
                           forward_lanes=fwd, backward_lanes=bwd)
    if element_type is TrafficSign:
        stype = _SIGN_TYPES[buf.read(1)[0]]
        value = _read_f32(buf) if buf.read(1)[0] else None
        facing = _read_f32(buf)
        height = _read_f32(buf)
        refl = _read_f32(buf)
        return TrafficSign(id=eid, position=_read_point(buf), sign_type=stype,
                           value=value, facing=facing, height=height,
                           reflectivity=refl)
    if element_type is TrafficLight:
        facing = _read_f32(buf)
        cycle = (_read_f32(buf), _read_f32(buf), _read_f32(buf))
        phase = _read_f32(buf)
        height = _read_f32(buf)
        return TrafficLight(id=eid, position=_read_point(buf), facing=facing,
                            cycle=cycle, phase_offset=phase, height=height)
    if element_type is Pole:
        height = _read_f32(buf)
        refl = _read_f32(buf)
        return Pole(id=eid, position=_read_point(buf), height=height,
                    reflectivity=refl)
    if element_type is RoadMarking:
        height = _read_f32(buf)
        refl = _read_f32(buf)
        position = _read_point(buf)
        n = _read_varint(buf)
        marking_type = buf.read(n).decode()
        return RoadMarking(id=eid, position=position, reflectivity=refl,
                           marking_type=marking_type)
    if element_type is Crosswalk:
        return Crosswalk(id=eid, polygon=_read_polyline(buf).points.copy())
    if element_type is StopLine:
        return StopLine(id=eid, line=_read_polyline(buf))
    if element_type is RegulatoryElement:
        rtype = _RULE_TYPES[buf.read(1)[0]]
        value = _read_f32(buf) if buf.read(1)[0] else None
        lanes = _read_id_list(buf, kinds)
        evidence = _read_id_list(buf, kinds)
        yields_to = _read_id_list(buf, kinds)
        return RegulatoryElement(id=eid, rule_type=rtype, value=value,
                                 lanes=lanes, evidence=evidence,
                                 yields_to=yields_to)
    raise StorageError(f"unhandled element type {element_type.__name__}")


# ----------------------------------------------------------------------
# Whole-map codec
# ----------------------------------------------------------------------
def _referenced_ids(element: MapElement) -> List[Optional[ElementId]]:
    """All element ids this element refers to (cross-tile refs included)."""
    if isinstance(element, Lane):
        return [element.left_boundary, element.right_boundary,
                element.segment]
    if isinstance(element, RoadSegment):
        return ([element.start_node, element.end_node]
                + list(element.forward_lanes) + list(element.backward_lanes))
    if isinstance(element, RegulatoryElement):
        return list(element.lanes) + list(element.evidence) \
            + list(element.yields_to)
    return []


def encode_map(hdmap: HDMap, simplify_tolerance: float = 0.0) -> bytes:
    """Encode a map to compact bytes.

    ``simplify_tolerance`` > 0 applies Douglas-Peucker to every polyline
    first — the lossy knob Li et al. turn to hit their 100 KB/mile.
    """
    kinds_set = {e.id.kind for e in hdmap.elements()}
    for element in hdmap.elements():
        for ref in _referenced_ids(element):
            if ref is not None:
                kinds_set.add(ref.kind)
    kinds = sorted(kinds_set)
    body = BytesIO()
    name_raw = hdmap.name.encode()
    _write_varint(body, len(name_raw))
    body.write(name_raw)
    _write_varint(body, hdmap.version)
    _write_varint(body, len(kinds))
    for kind in kinds:
        raw = kind.encode()
        _write_varint(body, len(raw))
        body.write(raw)
    elements = list(hdmap.elements())
    _write_varint(body, len(elements))
    for element in elements:
        if simplify_tolerance > 0:
            element = _simplified(element, simplify_tolerance)
        _encode_element(body, element, kinds)
    payload = zlib.compress(body.getvalue(), level=9)
    header = MAGIC + struct.pack("<BI", VERSION, len(payload))
    return header + payload


def decode_map(data) -> HDMap:
    """Decode an HDMV blob (``bytes`` or any buffer, e.g. a zero-copy
    ``memoryview`` of a tile pack).

    Truncated, corrupt, or bad-magic input raises
    :class:`~repro.errors.StorageError` — raw ``struct.error`` /
    ``zlib.error`` / ``IndexError`` never escape, so callers can treat
    every undecodable blob uniformly.
    """
    data = bytes(data)
    if len(data) < 9:
        raise StorageError("truncated HDMV header")
    if data[:4] != MAGIC:
        raise StorageError("bad magic; not an HDMV blob")
    version, length = struct.unpack("<BI", data[4:9])
    if version != VERSION:
        raise StorageError(f"unsupported binary version {version}")
    if len(data) < 9 + length:
        raise StorageError("truncated HDMV payload")
    try:
        body = BytesIO(zlib.decompress(data[9:9 + length]))
    except zlib.error as exc:
        raise StorageError(f"corrupt HDMV payload: {exc}") from exc
    try:
        name = body.read(_read_varint(body)).decode()
        map_version = _read_varint(body)
        n_kinds = _read_varint(body)
        kinds = [body.read(_read_varint(body)).decode()
                 for _ in range(n_kinds)]
        hdmap = HDMap(name)
        hdmap.version = map_version
        n = _read_varint(body)
        for _ in range(n):
            hdmap.add(_decode_element(body, kinds))
        return hdmap
    except StorageError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError,
            ValueError, KeyError) as exc:
        raise StorageError(f"corrupt HDMV body: {exc}") from exc


def _simplified(element: MapElement, tolerance: float) -> MapElement:
    import copy

    clone = copy.copy(element)
    if isinstance(clone, LaneBoundary):
        clone.line = clone.line.simplify(tolerance)
    elif isinstance(clone, Lane):
        clone.centerline = clone.centerline.simplify(tolerance)
    elif isinstance(clone, RoadSegment):
        clone.reference_line = clone.reference_line.simplify(tolerance)
    elif isinstance(clone, StopLine):
        clone.line = clone.line.simplify(tolerance)
    return clone
