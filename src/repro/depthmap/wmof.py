"""Weighted Mode Filter for guided depth upsampling (Chen et al. [19]).

The WMoF upsamples a low-resolution depth map to the guide image's
resolution by taking, per output pixel, the *mode* of nearby depth
candidates weighted by guide-image similarity and spatial proximity —
unlike an average, the mode never invents depths between surfaces, so
edges stay crisp and flying-pixel outliers are voted out.

The paper's contribution is a VLSI memory hierarchy that streams the
image through a tiny on-chip tile (5.4 KB) at 43 fps. We reproduce the
algorithm and the *working-set accounting*: the filter runs in row-strip
tiles whose buffer footprint is reported, versus the naive full-frame
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sensors.depth import DepthFrame


@dataclass
class WmofStats:
    """Throughput, working set, and accuracy of one upsampling run."""

    seconds: float
    fps: float
    working_bytes: int
    mae: float
    outlier_fraction: float  # pixels > 1 m off


class WeightedModeFilter:
    """Guided weighted-mode depth upsampler with tiled execution."""

    def __init__(self, window: int = 1, depth_tolerance: float = 0.5,
                 guide_sigma: float = 0.12, spatial_sigma: float = 1.2,
                 tile_rows: int = 16) -> None:
        # ``window`` is the low-res neighbourhood radius (1 => 3x3).
        self.window = window
        self.depth_tolerance = depth_tolerance
        self.guide_sigma = guide_sigma
        self.spatial_sigma = spatial_sigma
        self.tile_rows = tile_rows

    # ------------------------------------------------------------------
    def upsample(self, frame: DepthFrame, tiled: bool = True
                 ) -> Tuple[np.ndarray, WmofStats]:
        import time

        started = time.perf_counter()
        guide = frame.guide
        H, W = guide.shape
        if tiled:
            out = np.empty((H, W))
            rows_per_tile = self.tile_rows
            for r0 in range(0, H, rows_per_tile):
                r1 = min(H, r0 + rows_per_tile)
                out[r0:r1] = self._filter_rows(frame, r0, r1)
            working = self._tile_working_bytes(frame)
        else:
            out = self._filter_rows(frame, 0, H)
            working = self._full_working_bytes(frame)
        elapsed = time.perf_counter() - started
        err = np.abs(out - frame.depth_true)
        stats = WmofStats(
            seconds=elapsed,
            fps=1.0 / max(elapsed, 1e-9),
            working_bytes=working,
            mae=float(err.mean()),
            outlier_fraction=float((err > 1.0).mean()),
        )
        return out, stats

    # ------------------------------------------------------------------
    def _filter_rows(self, frame: DepthFrame, r0: int, r1: int) -> np.ndarray:
        guide = frame.guide[r0:r1]
        f = frame.factor
        h, w = guide.shape
        low = frame.depth_low
        guide_low = frame.guide[::f, ::f]

        # Low-res coordinates of each output pixel in this strip.
        rows = (np.arange(r0, r1) // f)
        cols = (np.arange(w) // f)

        offsets = range(-self.window, self.window + 1)
        candidates = []
        weights = []
        for dy in offsets:
            rr = np.clip(rows + dy, 0, low.shape[0] - 1)
            for dx in offsets:
                cc = np.clip(cols + dx, 0, low.shape[1] - 1)
                cand = low[rr[:, None], cc[None, :]]
                cand_guide = guide_low[rr[:, None], cc[None, :]]
                w_guide = np.exp(-0.5 * ((guide - cand_guide)
                                         / self.guide_sigma)**2)
                w_spatial = np.exp(-0.5 * (dy * dy + dx * dx)
                                   / self.spatial_sigma**2)
                candidates.append(cand)
                weights.append(w_guide * w_spatial)
        cand = np.stack(candidates)  # (K, h, w)
        wts = np.stack(weights)

        # Weighted mode: each candidate's score is the weight mass of all
        # candidates within depth_tolerance of it; take the argmax.
        scores = np.zeros_like(cand)
        K = cand.shape[0]
        for k in range(K):
            close = np.abs(cand - cand[k][None, ...]) <= self.depth_tolerance
            scores[k] = (wts * close).sum(axis=0)
        best = np.argmax(scores, axis=0)
        return np.take_along_axis(cand, best[None, ...], axis=0)[0]

    # ------------------------------------------------------------------
    def _tile_working_bytes(self, frame: DepthFrame) -> int:
        """On-chip buffer model: guide strip + low-res halo + accumulators.

        Matches the paper's streaming architecture: only ``tile_rows`` of
        guide, the corresponding low-res rows (plus window halo), and one
        row-strip of score accumulators are resident; 16-bit fixed point.
        """
        f = frame.factor
        W = frame.guide.shape[1]
        k = 2 * self.window + 1
        guide_strip = self.tile_rows * W * 2
        low_rows = (self.tile_rows // f + 2 * self.window + 1)
        low_strip = low_rows * (W // f) * 2 * 2  # depth + guide_low
        accum = k * k * (W // f) * 2
        return guide_strip + low_strip + accum

    def _full_working_bytes(self, frame: DepthFrame) -> int:
        H, W = frame.guide.shape
        f = frame.factor
        k = 2 * self.window + 1
        # Full-frame buffers: guide, output, K candidate + K weight planes.
        return (2 * H * W + 2 * k * k * H * W) * 2


def nearest_neighbour_upsample(frame: DepthFrame) -> np.ndarray:
    """Baseline: plain nearest-neighbour upsampling of the noisy low-res."""
    f = frame.factor
    H, W = frame.guide.shape
    rows = np.clip(np.arange(H) // f, 0, frame.depth_low.shape[0] - 1)
    cols = np.clip(np.arange(W) // f, 0, frame.depth_low.shape[1] - 1)
    return frame.depth_low[rows[:, None], cols[None, :]]
