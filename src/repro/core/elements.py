"""HD-map element types (the *physical* and *relational* content).

The element vocabulary follows the surveyed data models:

- Lanelet2 [20]: physical elements (boundaries, markings, signs) that
  relational elements (lanes) bind together under traffic rules;
- HiDAM [21]: road segments as multi-directional *lane bundles* over a
  node-edge skeleton;
- semantic maps [17]: every element is an entity with a pose and a bag of
  attributes.

All geometry is 2-D east-north metres (see :mod:`repro.geometry`); point
elements carry an optional height so 6-DoF and perception code can lift
them to 3-D.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ids import ElementId
from repro.geometry.polyline import Polyline

Attributes = Dict[str, object]


class Kind:
    """Canonical ``ElementId.kind`` tags, one per element class."""

    NODE = "node"
    BOUNDARY = "boundary"
    LANE = "lane"
    SEGMENT = "segment"
    SIGN = "sign"
    LIGHT = "light"
    CROSSWALK = "crosswalk"
    STOPLINE = "stopline"
    POLE = "pole"
    MARKING = "marking"
    REGULATORY = "regulatory"


class BoundaryType(enum.Enum):
    """Physical type of a lane boundary."""

    SOLID = "solid"
    DASHED = "dashed"
    DOUBLE_SOLID = "double_solid"
    CURB = "curb"
    ROAD_EDGE = "road_edge"
    VIRTUAL = "virtual"  # e.g. inferred lane split inside an intersection

    @property
    def is_crossable(self) -> bool:
        return self in (BoundaryType.DASHED, BoundaryType.VIRTUAL)


class LaneType(enum.Enum):
    DRIVING = "driving"
    SHOULDER = "shoulder"
    BIKE = "bike"
    BUS = "bus"
    PARKING = "parking"


class SignType(enum.Enum):
    SPEED_LIMIT = "speed_limit"
    STOP = "stop"
    YIELD = "yield"
    NO_OVERTAKING = "no_overtaking"
    CONSTRUCTION = "construction"
    DIRECTION = "direction"
    SAFETY = "safety"  # indoor factory safety signage (Tas et al.)


class LightState(enum.Enum):
    RED = "red"
    YELLOW = "yellow"
    GREEN = "green"
    UNKNOWN = "unknown"


@dataclass
class MapElement:
    """Base class: a uniquely identified entity with free-form attributes."""

    id: ElementId
    attributes: Attributes = field(default_factory=dict)

    def bounds(self) -> Tuple[float, float, float, float]:
        raise NotImplementedError


@dataclass
class Node(MapElement):
    """A topological node (intersection centre or segment endpoint)."""

    position: np.ndarray = field(default_factory=lambda: np.zeros(2))

    def bounds(self) -> Tuple[float, float, float, float]:
        x, y = float(self.position[0]), float(self.position[1])
        return (x, y, x, y)


@dataclass
class LaneBoundary(MapElement):
    """A painted line, curb, or road edge."""

    line: Polyline = None  # type: ignore[assignment]
    boundary_type: BoundaryType = BoundaryType.SOLID
    reflectivity: float = 0.6  # LiDAR intensity prior of the paint/material

    def bounds(self) -> Tuple[float, float, float, float]:
        return self.line.bounds()


@dataclass
class Lane(MapElement):
    """A drivable lane: centerline plus references to its two boundaries."""

    centerline: Polyline = None  # type: ignore[assignment]
    left_boundary: Optional[ElementId] = None
    right_boundary: Optional[ElementId] = None
    width: float = 3.5
    lane_type: LaneType = LaneType.DRIVING
    speed_limit: float = 13.89  # m/s (50 km/h) default urban
    segment: Optional[ElementId] = None  # owning HiDAM lane bundle

    def bounds(self) -> Tuple[float, float, float, float]:
        min_x, min_y, max_x, max_y = self.centerline.bounds()
        half = self.width / 2.0
        return (min_x - half, min_y - half, max_x + half, max_y + half)

    @property
    def length(self) -> float:
        return self.centerline.length

    def contains_point(self, point: np.ndarray) -> bool:
        """True if ``point`` lies within half a width of the centerline."""
        s, d = self.centerline.project(point)
        on_extent = -1e-9 <= s <= self.centerline.length + 1e-9
        return on_extent and abs(d) <= self.width / 2.0


@dataclass
class RoadSegment(MapElement):
    """HiDAM-style lane bundle: parallel lanes between two nodes.

    ``forward_lanes`` are ordered left-to-right in the direction
    start -> end; ``backward_lanes`` likewise for the opposite direction.
    """

    start_node: ElementId = None  # type: ignore[assignment]
    end_node: ElementId = None  # type: ignore[assignment]
    reference_line: Polyline = None  # type: ignore[assignment]
    forward_lanes: List[ElementId] = field(default_factory=list)
    backward_lanes: List[ElementId] = field(default_factory=list)

    def bounds(self) -> Tuple[float, float, float, float]:
        min_x, min_y, max_x, max_y = self.reference_line.bounds()
        pad = 2.0 + 3.7 * max(len(self.forward_lanes), len(self.backward_lanes))
        return (min_x - pad, min_y - pad, max_x + pad, max_y + pad)

    @property
    def lane_count(self) -> int:
        return len(self.forward_lanes) + len(self.backward_lanes)


@dataclass
class PointLandmark(MapElement):
    """Base for point features that localization can triangulate against."""

    position: np.ndarray = field(default_factory=lambda: np.zeros(2))
    height: float = 0.0
    reflectivity: float = 0.5

    def bounds(self) -> Tuple[float, float, float, float]:
        x, y = float(self.position[0]), float(self.position[1])
        return (x, y, x, y)

    def position3d(self) -> np.ndarray:
        return np.array([self.position[0], self.position[1], self.height])


@dataclass
class TrafficSign(PointLandmark):
    sign_type: SignType = SignType.SPEED_LIMIT
    value: Optional[float] = None  # e.g. the speed limit it posts, m/s
    facing: float = 0.0  # heading the sign faces, radians

    def __post_init__(self) -> None:
        if self.height == 0.0:
            self.height = 2.2
        if self.reflectivity == 0.5:
            self.reflectivity = 0.9  # signs are retro-reflective


@dataclass
class TrafficLight(PointLandmark):
    facing: float = 0.0
    cycle: Tuple[float, float, float] = (30.0, 3.0, 27.0)  # red, yellow, green s
    phase_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.height == 0.0:
            self.height = 5.0

    def state_at(self, t: float) -> LightState:
        red, yellow, green = self.cycle
        period = red + yellow + green
        phase = (t + self.phase_offset) % period
        if phase < red:
            return LightState.RED
        if phase < red + yellow:
            return LightState.YELLOW
        return LightState.GREEN


@dataclass
class Pole(PointLandmark):
    """Lamp post / HRL-style highly reflective pole landmark [53]."""

    def __post_init__(self) -> None:
        if self.height == 0.0:
            self.height = 6.0
        if self.reflectivity == 0.5:
            self.reflectivity = 0.95


@dataclass
class Crosswalk(MapElement):
    """Pedestrian crossing as a polygon."""

    polygon: np.ndarray = field(default_factory=lambda: np.zeros((0, 2)))

    def bounds(self) -> Tuple[float, float, float, float]:
        mn = self.polygon.min(axis=0)
        mx = self.polygon.max(axis=0)
        return (float(mn[0]), float(mn[1]), float(mx[0]), float(mx[1]))


@dataclass
class StopLine(MapElement):
    line: Polyline = None  # type: ignore[assignment]

    def bounds(self) -> Tuple[float, float, float, float]:
        return self.line.bounds()


@dataclass
class RoadMarking(PointLandmark):
    """A painted symbol on the asphalt (arrow, text) used by IPM matching."""

    marking_type: str = "arrow"

    def __post_init__(self) -> None:
        self.height = 0.0
        if self.reflectivity == 0.5:
            self.reflectivity = 0.8


KIND_OF_TYPE = {
    Node: Kind.NODE,
    LaneBoundary: Kind.BOUNDARY,
    Lane: Kind.LANE,
    RoadSegment: Kind.SEGMENT,
    TrafficSign: Kind.SIGN,
    TrafficLight: Kind.LIGHT,
    Crosswalk: Kind.CROSSWALK,
    StopLine: Kind.STOPLINE,
    Pole: Kind.POLE,
    RoadMarking: Kind.MARKING,
}
