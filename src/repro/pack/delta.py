"""Binary delta wire format for incremental sync.

``ChangesSince`` historically shipped a pickled
:class:`~repro.update.distribution.SyncDelta` — full Python objects,
numpy float64 geometry and all. This codec packs the same payload the
way :mod:`repro.storage.binary` packs tiles: a kind table, varint
change records (type tag, id, zigzag-quantized position, detail), and
compact element records for the touched elements only, zlib-compressed.
The wire cost of a sync becomes proportional to what actually changed,
at a fraction of the pickled size.

Framing mirrors the HDMV tile blob: ``HDDL`` magic, format version,
payload length, compressed body. :func:`decode_delta` raises
:class:`~repro.errors.StorageError` on any truncated or corrupt input —
``struct.error``/``zlib.error`` never escape.
"""

from __future__ import annotations

import struct
import zlib
from io import BytesIO
from typing import Dict, List, Optional

from repro.core.changes import ChangeType, MapChange
from repro.core.ids import ElementId
from repro.errors import StorageError
from repro.update.distribution import SyncDelta

DELTA_MAGIC = b"HDDL"
DELTA_VERSION = 1

_CHANGE_TAGS = {
    ChangeType.ADDED: 0,
    ChangeType.REMOVED: 1,
    ChangeType.MOVED: 2,
    ChangeType.MODIFIED: 3,
}
_TAG_CHANGES = {v: k for k, v in _CHANGE_TAGS.items()}


def _collect_kinds(delta: SyncDelta) -> List[str]:
    from repro.storage.binary import _referenced_ids

    kinds = {change.element_id.kind for change in delta.changes}
    kinds.update(eid.kind for eid in delta.elements)
    for element in delta.elements.values():
        if element is None:
            continue
        kinds.add(element.id.kind)
        for ref in _referenced_ids(element):
            if ref is not None:
                kinds.add(ref.kind)
    return sorted(kinds)


def encode_delta(delta: SyncDelta) -> bytes:
    """Pack one :class:`SyncDelta` into compact wire bytes."""
    from repro.storage.binary import (
        QUANTUM,
        _encode_element,
        _write_f32,
        _write_id,
        _write_svarint,
        _write_varint,
    )

    kinds = _collect_kinds(delta)
    body = BytesIO()
    _write_varint(body, delta.version)
    _write_varint(body, len(kinds))
    for kind in kinds:
        raw = kind.encode()
        _write_varint(body, len(raw))
        body.write(raw)
    _write_varint(body, len(delta.changes))
    for change in delta.changes:
        body.write(bytes([_CHANGE_TAGS[change.change_type]]))
        _write_id(body, change.element_id, kinds)
        _write_svarint(body, int(round(change.position[0] / QUANTUM)))
        _write_svarint(body, int(round(change.position[1] / QUANTUM)))
        if change.change_type is ChangeType.MOVED:
            _write_f32(body, float(change.magnitude))
        raw = change.detail.encode()
        _write_varint(body, len(raw))
        body.write(raw)
    _write_varint(body, len(delta.elements))
    for eid, element in delta.elements.items():
        _write_id(body, eid, kinds)
        if element is None:
            body.write(b"\x00")  # removed: id only, no payload
        else:
            body.write(b"\x01")
            _encode_element(body, element, kinds)
    payload = zlib.compress(body.getvalue(), level=6)
    return DELTA_MAGIC + struct.pack("<BI", DELTA_VERSION, len(payload)) \
        + payload


def decode_delta(data) -> SyncDelta:
    """Inverse of :func:`encode_delta`; :class:`StorageError` on any
    truncated, corrupt, or bad-magic input."""
    from repro.storage.binary import (
        QUANTUM,
        _decode_element,
        _read_f32,
        _read_id,
        _read_varint,
        _read_svarint,
    )

    data = bytes(data)
    if len(data) < 9:
        raise StorageError("truncated HDDL header")
    if data[:4] != DELTA_MAGIC:
        raise StorageError("bad magic; not an HDDL delta")
    version, length = struct.unpack("<BI", data[4:9])
    if version != DELTA_VERSION:
        raise StorageError(f"unsupported delta version {version}")
    if len(data) < 9 + length:
        raise StorageError("truncated HDDL payload")
    try:
        body = BytesIO(zlib.decompress(data[9:9 + length]))
    except zlib.error as exc:
        raise StorageError(f"corrupt HDDL payload: {exc}") from exc
    try:
        map_version = _read_varint(body)
        n_kinds = _read_varint(body)
        kinds = [body.read(_read_varint(body)).decode()
                 for _ in range(n_kinds)]
        changes: List[MapChange] = []
        for _ in range(_read_varint(body)):
            raw_tag = body.read(1)
            if not raw_tag:
                raise StorageError("truncated change record")
            tag = raw_tag[0]
            change_type = _TAG_CHANGES.get(tag)
            if change_type is None:
                raise StorageError(f"unknown change tag {tag}")
            eid = _read_id(body, kinds)
            if eid is None:
                raise StorageError("change record with null element id")
            x = _read_svarint(body) * QUANTUM
            y = _read_svarint(body) * QUANTUM
            magnitude = _read_f32(body) \
                if change_type is ChangeType.MOVED else 0.0
            detail = body.read(_read_varint(body)).decode()
            changes.append(MapChange(change_type, eid, (x, y),
                                     magnitude=magnitude, detail=detail))
        elements: Dict[ElementId, Optional[object]] = {}
        for _ in range(_read_varint(body)):
            eid = _read_id(body, kinds)
            if eid is None:
                raise StorageError("element record with null id")
            flag = body.read(1)
            if not flag:
                raise StorageError("truncated element presence flag")
            elements[eid] = _decode_element(body, kinds) \
                if flag[0] else None
        return SyncDelta(map_version, changes, elements)
    except StorageError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError,
            ValueError, KeyError) as exc:
        raise StorageError(f"corrupt HDDL body: {exc}") from exc
